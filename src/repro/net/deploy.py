"""Localhost deployment harness: the full topology over real sockets.

:class:`LocalCluster` mirrors :class:`repro.core.system.ReplicationSystem`
-- same cast, same construction order, same deterministic key derivation
from the spec seed -- but wires every node to its own TCP listener and
connection pool instead of the shared simulated fabric.  The protocol
core is byte-for-byte the same code that runs in the simulator; what
changes is the seam implementations from :mod:`repro.net.server`.

Intended use::

    cluster = await LocalCluster.launch(NetDeploymentSpec(seed=7))
    try:
        await cluster.write(cluster.clients[0], KVPut(key="k", value=1))
        reply = await cluster.read(cluster.clients[1], KVGet(key="k"))
    finally:
        await cluster.aclose()

Every timing parameter is real seconds here, so the default protocol
config (tuned for simulated hours) is replaced by
:func:`fast_protocol_config` unless the spec says otherwise.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.content.kvstore import KeyValueStore
from repro.content.queries import Operation
from repro.content.store import ContentStore
from repro.core.adversary import AdversaryStrategy
from repro.core.auditor import AuditorServer
from repro.core.client import Client
from repro.core.config import ProtocolConfig
from repro.core.directory import DirectoryServer
from repro.core.master import MasterServer
from repro.core.owner import ContentOwner
from repro.core.slave import SlaveServer
from repro.core.system import auditor_node_id
from repro.crypto.certificates import Certificate
from repro.metrics import MetricsRegistry
from repro.net.codec import NetHello
from repro.net.peers import PeerDirectory, format_address
from repro.net.server import NodeServer, RealtimeScheduler, SocketNetwork
from repro.net.transport import ConnectionPool, RetryPolicy, read_frame, \
    write_frame
from repro.obs.admin import (
    AdminPlane,
    ObsDumpRequest,
    ObsHealthRequest,
    QosStatusRequest,
)
from repro.obs.spans import ObsRuntime
from repro.qos.breaker import BreakerPolicy
from repro.qos.ledger import AdmissionLedger
from repro.qos.tokens import AdmissionPolicy
from repro.shard.wire import ShardStatusRequest
from repro.sim.network import Node

#: Admin-plane scrape vocabulary: kind -> request factory.  One table
#: instead of one near-identical helper per request type; new admin
#: requests only add a row.
_ADMIN_REQUESTS: dict[str, Any] = {
    "spans": ObsDumpRequest,
    "health": ObsHealthRequest,
    "qos": QosStatusRequest,
    "shards": ShardStatusRequest,
}


class OperationSink(Protocol):
    """Anything that accepts client operations (structural).

    Satisfied by :class:`~repro.core.client.Client` and by
    :class:`~repro.shard.router.ShardRouter`, so the cluster's
    ``submit``/``write``/``read`` drive either.
    """

    def submit(self, op: Operation, level: str | None = None,
               callback: Callable[[dict], None] | None = None) -> None: ...


def fast_protocol_config(**overrides: Any) -> ProtocolConfig:
    """Protocol parameters re-scaled from simulated to real seconds.

    The inequalities from the paper still hold (keepalive_interval well
    under max_latency, audit grace beyond the consistency window); only
    the absolute magnitudes shrink so a full write/read/audit cycle fits
    in a few wall-clock seconds.
    """
    defaults: dict[str, Any] = dict(
        max_latency=0.8,
        keepalive_interval=0.2,
        double_check_probability=0.05,
        audit_grace=0.4,
        request_timeout=2.0,
        max_read_retries=5,
        slave_list_broadcast_interval=2.0,
        broadcast_heartbeat_interval=0.25,
        broadcast_suspect_after=1.5,
        broadcast_request_timeout=1.0,
        # Wall time IS the service time over sockets: charging the
        # paper's simulated per-read costs on top of real crypto caps
        # throughput an order of magnitude below the wire.
        simulate_service_times=False,
        batch_read_replies=True,
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


@dataclass
class NetDeploymentSpec:
    """Everything needed to boot one localhost cluster.

    Field meanings match :class:`repro.core.system.DeploymentSpec`;
    ``protocol=None`` selects :func:`fast_protocol_config`.
    """

    num_masters: int = 2
    slaves_per_master: int = 2
    num_clients: int = 2
    num_auditors: int = 1
    seed: int = 0
    protocol: ProtocolConfig | None = None
    store_factory: Any = None
    adversaries: dict[int, AdversaryStrategy] = field(default_factory=dict)
    client_double_check_overrides: dict[int, float] = field(
        default_factory=dict)
    host: str = "127.0.0.1"
    connect_timeout: float = 2.0
    io_timeout: float = 5.0
    #: Most messages one sender wakeup coalesces into a single write
    #: (see :class:`~repro.net.transport.ConnectionPool`).
    max_batch: int = 64
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-peer circuit breaker wrapping the retry machinery (see
    #: :class:`~repro.qos.breaker.CircuitBreaker`); None = pure retry.
    #: On by default for deployments: a crashed peer should fast-fail,
    #: not cost every queued frame a full backoff ladder.
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    #: Attach a ``repro.obs`` runtime and serve the admin plane
    #: (ObsDump/ObsHealth) on every node's listener.
    obs_enabled: bool = False
    #: Fraction of client-operation traces recorded (seeded sampler).
    obs_sample_rate: float = 1.0
    #: Per-node span ring-buffer capacity.
    obs_buffer_size: int = 4096

    def __post_init__(self) -> None:
        if self.num_masters < 1:
            raise ValueError("need at least one master")
        if self.slaves_per_master < 1:
            raise ValueError("need at least one slave per master")


class LocalCluster:
    """A booted localhost deployment; create via :meth:`launch`."""

    def __init__(self, spec: NetDeploymentSpec,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.spec = spec
        self.config = spec.protocol or fast_protocol_config()
        self._loop = loop
        self.metrics = MetricsRegistry()
        self.scheduler = RealtimeScheduler(spec.seed, loop)
        self.obs: ObsRuntime | None = None
        self.admin: AdminPlane | None = None
        if spec.obs_enabled:
            self.obs = ObsRuntime(
                self.scheduler, seed=spec.seed,
                sample_rate=spec.obs_sample_rate,
                buffer_size=spec.obs_buffer_size)
            self.scheduler.obs = self.obs
            self.admin = AdminPlane(self.obs)
        self.peers = PeerDirectory()
        self.owner = ContentOwner(
            "content-owner", signer_scheme=self.config.signer_scheme,
            rsa_bits=self.config.rsa_bits,
            rng=self.scheduler.fork_rng("keys:owner"))
        store_factory = spec.store_factory or (lambda: KeyValueStore())
        self.initial_store: ContentStore = store_factory()
        self.directory: DirectoryServer | None = None
        self.masters: list[MasterServer] = []
        self.auditors: list[AuditorServer] = []
        self.slaves: list[SlaveServer] = []
        self.clients: list[Client] = []
        self.master_certs: dict[str, Certificate] = {}
        self.servers: dict[str, NodeServer] = {}
        self.pools: dict[str, ConnectionPool] = {}
        # One deployment-wide per-principal ledger (opt-in): every
        # listener charges the same accounts, so reconnecting -- or
        # dialling a different host -- never refreshes an allowance.
        policy = self._admission_policy()
        self.ledger: AdmissionLedger | None = (
            AdmissionLedger(policy)
            if policy is not None and self.config.qos_per_principal
            else None)
        self._closed = False

    # -- construction -----------------------------------------------------

    @classmethod
    async def launch(cls, spec: NetDeploymentSpec | None = None,
                     settle: float = 1.0,
                     **spec_kwargs: Any) -> "LocalCluster":
        """Build, listen, start and settle a full cluster."""
        if spec is None:
            spec = NetDeploymentSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError("pass either a spec or keyword args, not both")
        cluster = cls(spec, asyncio.get_running_loop())
        await cluster._build()
        await cluster._start(settle)
        return cluster

    def _make_pool(self, node_id: str) -> ConnectionPool:
        """Build one node's outbound pool.

        The single seam subclasses override to swap in a fault-injecting
        pool (:class:`repro.chaos.ChaosConnectionPool`); also called by
        :meth:`restart_node` to give a rebooted node a fresh pool.
        """
        return ConnectionPool(
            node_id, self.peers, self.metrics,
            rng=self.scheduler.fork_rng(f"net:{node_id}"),
            retry=self.spec.retry,
            connect_timeout=self.spec.connect_timeout,
            io_timeout=self.spec.io_timeout,
            max_batch=self.spec.max_batch,
            breaker=self.spec.breaker)

    def _fabric(self, node_id: str) -> SocketNetwork:
        """One node's private network seam (pool + facade + listener slot)."""
        pool = self._make_pool(node_id)
        self.pools[node_id] = pool
        return SocketNetwork(self.scheduler, pool)

    def _admission_policy(self) -> AdmissionPolicy | None:
        """The spec's qos knobs as an AdmissionPolicy, or None when off.

        Wire-level admission control is opt-in: with every ``qos_*``
        rate and the idle multiple unset (the ProtocolConfig defaults)
        the listeners run exactly the pre-qos inline-dispatch path.
        """
        config = self.config
        if (config.qos_frame_rate is None and config.qos_byte_rate is None
                and config.qos_idle_multiple is None):
            return None
        idle = None
        if config.qos_idle_multiple is not None:
            idle = config.qos_idle_multiple * config.keepalive_interval
        return AdmissionPolicy(
            frame_rate=config.qos_frame_rate,
            frame_burst=config.qos_frame_burst,
            byte_rate=config.qos_byte_rate,
            byte_burst=config.qos_byte_burst,
            shed_fraction=config.qos_shed_fraction,
            strike_cost=config.qos_strike_cost,
            inbox_limit=config.qos_inbox_limit,
            idle_timeout=idle)

    async def _listen(self, node: Node) -> str:
        """Start ``node``'s listener; returns its ``host:port`` address."""
        policy = self._admission_policy()
        # Fork the shed rng only when admission is on, so the default
        # path's rng derivation order is untouched (key material is a
        # pure function of the seed and the fork sequence).
        qos_rng = None
        if policy is not None:
            qos_rng = self.scheduler.fork_rng(f"qos:{node.node_id}")
        server = NodeServer(node, self.metrics, admin=self.admin,
                            qos=policy, qos_rng=qos_rng,
                            ledger=self.ledger)
        host, port = await server.start(self.spec.host)
        self.servers[node.node_id] = server
        self.peers.add(node.node_id, host, port)
        return format_address(host, port)

    async def _build(self) -> None:
        spec = self.spec
        # Same cast and order as ReplicationSystem.__init__, so the
        # fork_rng-derived key material is a pure function of the seed.
        self.directory = DirectoryServer(
            "directory", self.scheduler, self._fabric("directory"))
        await self._listen(self.directory)

        member_ids = [f"master-{i:02d}" for i in range(spec.num_masters)]
        member_ids.extend(auditor_node_id(i)
                          for i in range(spec.num_auditors))
        for i in range(spec.num_masters):
            node_id = f"master-{i:02d}"
            master = MasterServer(
                node_id, self.scheduler, self._fabric(node_id),
                self.config, self.initial_store.clone(), member_ids,
                self.metrics)
            self.masters.append(master)
            await self._listen(master)
        for i in range(spec.num_auditors):
            node_id = auditor_node_id(i)
            auditor = AuditorServer(
                node_id, self.scheduler, self._fabric(node_id),
                self.config, self.initial_store.clone(), member_ids,
                self.metrics)
            self.auditors.append(auditor)
            await self._listen(auditor)

        for server in [*self.masters, *self.auditors]:
            cert = self.owner.certify_master(
                server.node_id, self.peers.address(server.node_id),
                server.keys.public_key, now=self.scheduler.now)
            self.master_certs[server.node_id] = cert
        fingerprint = self.owner.content_key_fingerprint()
        for master in self.masters:
            self.directory.publish(fingerprint,
                                   self.master_certs[master.node_id])

        global_index = 0
        for i, master in enumerate(self.masters):
            for j in range(spec.slaves_per_master):
                slave_id = f"slave-{i:02d}-{j:02d}"
                strategy = spec.adversaries.get(global_index)
                slave = SlaveServer(
                    slave_id, self.scheduler, self._fabric(slave_id),
                    self.config, self.initial_store.clone(),
                    self.master_certs, self.metrics, strategy=strategy)
                address = await self._listen(slave)
                master.register_slave(slave_id, address,
                                      slave.keys.public_key)
                self.slaves.append(slave)
                global_index += 1

        for i in range(spec.num_clients):
            node_id = f"client-{i:02d}"
            client = Client(
                node_id, self.scheduler, self._fabric(node_id),
                self.config, directory_id="directory",
                owner_public_key=self.owner.content_public_key,
                metrics=self.metrics,
                double_check_override=(
                    spec.client_double_check_overrides.get(i)))
            self.clients.append(client)
            await self._listen(client)
            if self.ledger is not None:
                self.ledger.register_key(client.node_id,
                                         client.keys.public_key)

    async def _start(self, settle: float) -> None:
        for master in self.masters:
            master.start()
        for auditor in self.auditors:
            auditor.start()
        for slave in self.slaves:
            slave.start()
        self.masters[0].elect_auditors(
            tuple(a.node_id for a in self.auditors))
        await asyncio.sleep(settle)
        for client in self.clients:
            client.start()
        await self.wait_ready()

    async def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until every client finished the setup phase."""
        deadline = self._loop.time() + timeout
        while not all(client.ready for client in self.clients):
            if self._loop.time() > deadline:
                pending = [c.node_id for c in self.clients if not c.ready]
                raise TimeoutError(f"clients never became ready: {pending}")
            await asyncio.sleep(0.05)

    # -- workload driving -------------------------------------------------

    async def submit(self, client: OperationSink, op: Operation,
                     level: str | None = None,
                     timeout: float = 15.0) -> dict[str, Any]:
        """Submit one operation; await the client-side completion dict."""
        future: "asyncio.Future[dict[str, Any]]" = self._loop.create_future()

        def done(outcome: dict[str, Any]) -> None:
            if not future.done():
                future.set_result(outcome)

        client.submit(op, level, done)
        return await asyncio.wait_for(future, timeout)

    async def write(self, client: OperationSink, op: Operation,
                    timeout: float = 15.0) -> dict[str, Any]:
        return await self.submit(client, op, timeout=timeout)

    async def read(self, client: OperationSink, query: Operation,
                   level: str | None = None,
                   timeout: float = 15.0) -> dict[str, Any]:
        return await self.submit(client, query, level=level, timeout=timeout)

    # -- fault injection ---------------------------------------------------

    def kill_connection(self, src_id: str, dst_id: str) -> bool:
        """Abort the live src->dst TCP connection (retry-path exercise)."""
        pool = self.pools.get(src_id)
        return pool.kill_connection(dst_id) if pool is not None else False

    def node(self, node_id: str) -> Node:
        """Look up any deployed node by id."""
        server = self.servers.get(node_id)
        if server is None:
            raise KeyError(f"no node {node_id!r} in this cluster")
        return server.node

    async def crash_node(self, node_id: str) -> None:
        """Benign host crash: stop serving and reset every connection.

        The process is gone, not just the protocol state machine --
        outbound frames stop (the pool is closed, queued frames are
        discarded), the listener closes (peers dialling back get
        connection-refused) and accepted connections are reset.  The
        protocol-level ``node.crash()`` runs first so role cleanup (e.g.
        stopping broadcast participation) happens before the wires go.
        """
        server = self.servers[node_id]
        if server.node.crashed:
            return
        server.node.crash()
        await self.pools[node_id].aclose()
        await server.suspend()
        self.metrics.record("chaos_crashes", self.scheduler.now, 1.0)

    async def restart_node(self, node_id: str) -> None:
        """Reboot a crashed node on its original endpoint.

        A restarted host comes back with a fresh connection pool (new
        sockets, same deterministic rng derivation scheme) bound to the
        same address its peers already know, then runs the role's
        ``on_recover`` path -- trusted servers announce recovery to the
        broadcast group and catch up, slaves resync off their master's
        next keep-alive.
        """
        server = self.servers[node_id]
        node = server.node
        if not node.crashed:
            return
        pool = self._make_pool(node_id)
        self.pools[node_id] = pool
        network = node.network
        assert isinstance(network, SocketNetwork)
        network.pool = pool
        await server.resume()
        node.recover()
        self.metrics.record("chaos_restarts", self.scheduler.now, 1.0)

    # -- admin plane -------------------------------------------------------

    async def scrape(self, node_id: str, request: Any,
                     timeout: float = 5.0) -> Any:
        """Send one admin request to a live node over a fresh connection.

        Dials the node's real listener and speaks the real wire format
        (NetHello handshake, then request frame, then one reply frame),
        so a scrape exercises exactly the path an external monitoring
        agent would.  Requires ``spec.obs_enabled``.
        """
        if self.admin is None:
            raise RuntimeError(
                "admin plane is off; launch with obs_enabled=True")
        host, port = self.peers.endpoint(node_id)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout)
        try:
            await write_frame(writer, NetHello(node_id="obs-scraper"),
                              timeout)
            await write_frame(writer, request, timeout)
            reply, _size = await read_frame(reader, timeout)
            return reply
        finally:
            writer.transport.abort()

    async def scrape_admin(self, node_id: str, kind: str,
                           **request_kwargs: Any) -> Any:
        """Generic admin scrape: build the ``kind`` request and send it.

        ``kind`` is a key of :data:`_ADMIN_REQUESTS` (``spans`` /
        ``health`` / ``qos`` / ``shards``); keyword arguments go to the
        request constructor.
        """
        factory = _ADMIN_REQUESTS.get(kind)
        if factory is None:
            raise ValueError(f"unknown admin scrape kind {kind!r}; "
                             f"known: {sorted(_ADMIN_REQUESTS)}")
        return await self.scrape(node_id, factory(**request_kwargs))

    async def scrape_spans(self, node_id: str,
                           max_spans: int = 4096) -> Any:
        """ObsDump shortcut: one node's buffered spans."""
        return await self.scrape_admin(node_id, "spans", max_spans=max_spans)

    async def scrape_health(self, node_id: str) -> Any:
        """ObsHealth shortcut: one node's liveness summary."""
        return await self.scrape_admin(node_id, "health")

    async def scrape_qos(self, node_id: str) -> Any:
        """QosStatus shortcut: one node's admission/backpressure state."""
        return await self.scrape_admin(node_id, "qos")

    async def scrape_shards(self, node_id: str) -> Any:
        """ShardStatus shortcut: one host's tenants grouped by shard."""
        return await self.scrape_admin(node_id, "shards")

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Counters, auditor stats and per-master versions, JSON-shaped."""
        auditor = self.auditors[0]
        return {
            "topology": {
                "masters": len(self.masters),
                "slaves": len(self.slaves),
                "clients": len(self.clients),
                "auditors": len(self.auditors),
            },
            "counters": self.metrics.snapshot(),
            "auditor": {
                "pledges_received": sum(a.pledges_received
                                        for a in self.auditors),
                "pledges_audited": sum(a.pledges_audited
                                       for a in self.auditors),
                "detections": sum(a.detections for a in self.auditors),
                "cache_hit_rate": auditor.cache_hit_rate(),
                "version": auditor.version,
            },
            "versions": {m.node_id: m.version for m in self.masters},
            "transport": {
                name: value
                for name, value in sorted(self.metrics.snapshot().items())
                if name.startswith("net_")
            },
        }

    def handler_errors(self) -> list[tuple[str, str, Exception]]:
        """(node, source, exception) for every captured handler failure."""
        return [(node_id, src, exc)
                for node_id, server in self.servers.items()
                for src, exc in server.errors]

    # -- shutdown ----------------------------------------------------------

    async def aclose(self) -> None:
        """Cancel timers, abort connections, close listeners."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.cancel_all()
        await asyncio.gather(*(pool.aclose()
                               for pool in self.pools.values()))
        await asyncio.gather(*(server.aclose()
                               for server in self.servers.values()))


async def run_net_demo(seed: int = 0, *, num_masters: int = 2,
                       slaves_per_master: int = 2, num_clients: int = 2,
                       settle: float = 1.0) -> dict[str, Any]:
    """One write + verified read + audited sensitive read, summarised.

    Powers the ``net-demo`` CLI subcommand; returns a JSON-shaped dict.
    """
    from repro.content.kvstore import KVGet, KVPut

    config = fast_protocol_config(
        double_check_probability=0.0,
        writers_allowed=frozenset({"client-00"}),
    )
    spec = NetDeploymentSpec(
        num_masters=num_masters, slaves_per_master=slaves_per_master,
        num_clients=num_clients, seed=seed, protocol=config)
    cluster = await LocalCluster.launch(spec, settle=settle)
    try:
        write = await cluster.write(
            cluster.clients[0], KVPut(key="demo", value="over-the-wire"))
        denied = await cluster.write(
            cluster.clients[1], KVPut(key="demo", value="unauthorised"))
        # Let the committed write reach the slaves (the paper only
        # guarantees reads reflect a write max_latency after commit).
        await asyncio.sleep(cluster.config.max_latency
                            + cluster.config.keepalive_interval)
        read = await cluster.read(cluster.clients[1], KVGet(key="demo"))
        sensitive = await cluster.read(
            cluster.clients[1], KVGet(key="demo"), level="sensitive")
        # Let the auditor pass the consistency window and drain its queue.
        await asyncio.sleep(cluster.config.max_latency
                            + cluster.config.audit_grace + 0.5)
        summary = cluster.summary()
        troubles = [(node, src, repr(exc))
                    for node, src, exc in cluster.handler_errors()]
        return {
            "seed": seed,
            "write": {"status": write.get("status"),
                      "version": write.get("version")},
            "write_denied": {"status": denied.get("status"),
                             "reason": denied.get("reason")},
            "read": {
                "status": read.get("status"),
                "value": (read.get("result") or {}).get("value"),
            },
            "sensitive_read": {"status": sensitive.get("status")},
            "audit": summary["auditor"],
            "versions": summary["versions"],
            "transport": summary["transport"],
            "handler_errors": troubles,
        }
    finally:
        await cluster.aclose()


def run_net_demo_sync(seed: int = 0, **kwargs: Any) -> dict[str, Any]:
    """Synchronous wrapper for CLI / tests without an event loop."""
    return asyncio.run(run_net_demo(seed, **kwargs))

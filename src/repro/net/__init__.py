"""Real-network runtime: wire codec, asyncio transport, socket servers.

``repro.net`` lets the unmodified protocol core (``repro.core``) run over
real TCP sockets instead of the discrete-event simulator.  The split
mirrors the design rule from ``sim/network.py``: servers talk only
through ``Node.send`` / ``Node.on_message``, so swapping the fabric
under them is a pure adapter exercise:

* :mod:`repro.net.codec` -- versioned, length-prefixed binary wire format
  round-tripping every registered protocol dataclass;
* :mod:`repro.net.transport` -- framed asyncio streams, retrying
  connection pool with bounded exponential backoff;
* :mod:`repro.net.server` / :mod:`repro.net.peers` -- per-node TCP
  listeners and the ``Network``/``Simulator`` facades the core runs on;
* :mod:`repro.net.deploy` -- a localhost cluster harness mirroring
  :class:`repro.core.system.DeploymentSpec`.

Unlike the rest of ``src/repro``, this package legitimately uses wall
clocks, ``asyncio`` and OS sockets; protolint's PL001 determinism rule
excludes it by path (see ``[tool.protolint]`` in ``pyproject.toml``).
"""

from repro.net.errors import (
    CodecError,
    FrameTooLarge,
    NetError,
    TransportError,
    TruncatedFrame,
    UnknownWireType,
)

__all__ = [
    "CodecError",
    "FrameTooLarge",
    "NetError",
    "TransportError",
    "TruncatedFrame",
    "UnknownWireType",
]

"""Peer addressing: node id -> (host, port) resolution.

In the simulator a node id *is* an address.  Over sockets the two are
distinct: certificates bind a node id to a ``"host:port"`` string (the
paper's Section 2 certificate carries "the address of that server"), and
the connection pool resolves ids through a :class:`PeerDirectory` the
deployment harness fills in as listeners come up.
"""

from __future__ import annotations

from repro.net.errors import PeerUnknown


def format_address(host: str, port: int) -> str:
    """The ``host:port`` string embedded in certificates."""
    return f"{host}:{port}"


def parse_address(address: str) -> tuple[str, int]:
    """Inverse of :func:`format_address`; raises ValueError on junk."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {address!r} is not 'host:port'")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {address!r} has a non-numeric port") \
            from None
    if not 0 < port < 65536:
        raise ValueError(f"address {address!r} port out of range")
    return host, port


class PeerDirectory:
    """Mutable node-id -> endpoint map shared by every connection pool."""

    def __init__(self) -> None:
        self._endpoints: dict[str, tuple[str, int]] = {}

    def add(self, node_id: str, host: str, port: int) -> None:
        self._endpoints[node_id] = (host, port)

    def remove(self, node_id: str) -> None:
        self._endpoints.pop(node_id, None)

    def knows(self, node_id: str) -> bool:
        return node_id in self._endpoints

    def endpoint(self, node_id: str) -> tuple[str, int]:
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise PeerUnknown(f"no known address for {node_id!r}") from None

    def address(self, node_id: str) -> str:
        host, port = self.endpoint(node_id)
        return format_address(host, port)

    def node_ids(self) -> list[str]:
        return sorted(self._endpoints)

    def __len__(self) -> int:
        return len(self._endpoints)

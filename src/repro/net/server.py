"""Socket runtime for unmodified protocol nodes.

The protocol core touches its environment through exactly three seams:
``simulator.fork_rng`` / ``Node.after`` / ``Node.now`` (time and
randomness) and ``network.transmit`` (messaging).  This module provides
real-time implementations of both seams --
:class:`RealtimeScheduler` maps timers onto the asyncio event loop, and
:class:`SocketNetwork` maps ``send`` onto a framed TCP connection pool
-- so ``MasterServer``, ``SlaveServer``, ``DirectoryServer``,
``AuditorServer`` and ``Client`` run over sockets without a single line
changed.

:class:`NodeServer` is the inbound half: one TCP listener per node,
accepting peer connections that open with a
:class:`~repro.net.codec.NetHello` and then carry protocol frames.
Malformed frames are counted and skipped (body-level garbage) or close
the connection (framing-level garbage); handler exceptions are captured,
not fatal -- a byzantine peer must not crash a server.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.metrics import MetricsRegistry
from repro.net import codec
from repro.net.errors import (
    BadMagic,
    BadVersion,
    CodecError,
    FrameTooLarge,
    HandshakeError,
    TruncatedFrame,
)
from repro.net.transport import ConnectionPool, read_frame, write_frame
from repro.obs.admin import AdminPlane
from repro.obs.context import TraceCarrier
from repro.sim.network import Network, Node
from repro.sim.simulator import EventHandle, Simulator, restore_context


class RealtimeHandle(EventHandle):
    """An :class:`EventHandle` backed by a loop timer."""

    __slots__ = ("_timer",)

    def __init__(self, fire_at: float,
                 timer: "asyncio.TimerHandle | None" = None) -> None:
        super().__init__(fire_at)
        self._timer = timer

    def cancel(self) -> None:
        super().cancel()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class RealtimeScheduler(Simulator):
    """A :class:`Simulator` whose clock is the asyncio event loop's.

    ``fork_rng`` keeps the simulator's deterministic derivation (seed +
    fork order + label), so key material for a given deployment spec is
    reproducible even though event *timing* is real.  The discrete-event
    ``run_*`` methods are disabled: in real time, the loop runs itself.
    """

    def __init__(self, seed: int, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(seed)
        self._loop = loop
        self._live: set[RealtimeHandle] = set()

    @property
    def now(self) -> float:
        return self._loop.time()

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        # Unlike the simulator, real time advances *during* a handler, so
        # protocol code computing "deadline - now" can legitimately come
        # out a few microseconds negative.  "In the past" means "as soon
        # as possible" here.
        delay = max(0.0, delay)
        obs = self.obs
        if obs is not None and obs.current is not None:
            args = (obs, obs.current, callback, args)
            callback = restore_context
        handle = RealtimeHandle(self.now + delay)

        def fire() -> None:
            self._live.discard(handle)
            if not handle.cancelled:
                self.events_processed += 1
                callback(*args)

        handle._timer = self._loop.call_later(delay, fire)
        self._live.add(handle)
        return handle

    def cancel_all(self) -> None:
        """Cancel every outstanding timer (deployment shutdown)."""
        for handle in list(self._live):
            handle.cancel()
        self._live.clear()

    def pending_events(self) -> int:
        return sum(1 for handle in self._live if not handle.cancelled)

    def run_until(self, deadline: float) -> None:
        raise RuntimeError("RealtimeScheduler cannot be stepped; "
                           "the event loop drives time")

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        raise RuntimeError("RealtimeScheduler cannot be stepped; "
                           "the event loop drives time")


class SocketNetwork(Network):
    """The ``Network`` seam of one node, backed by a connection pool.

    Each node owns one ``SocketNetwork`` (one host's view of the world),
    unlike the simulator where a single fabric object holds every node.
    ``transmit`` hands the message to the pool; delivery accounting
    happens on the receiving :class:`NodeServer`.
    """

    def __init__(self, scheduler: RealtimeScheduler,
                 pool: ConnectionPool) -> None:
        super().__init__(scheduler)
        self.pool = pool

    def transmit(self, src_id: str, dst_id: str, message: Any) -> None:
        obs = self.simulator.obs
        if obs is not None and obs.current is not None:
            # Envelope, not rewrite: the carried message is re-encoded
            # by the same codec entry as before, so signatures inside it
            # verify byte-identically on the far side.
            message = TraceCarrier(context=obs.current, message=message)
        self.pool.send(dst_id, message)


class NodeServer:
    """One node's TCP listener plus frame dispatch.

    ``errors`` collects handler exceptions (with the offending source and
    message) so tests can assert clean runs; production callers would
    drain it into logging.
    """

    def __init__(self, node: Node, metrics: MetricsRegistry,
                 handshake_timeout: float = 5.0,
                 admin: AdminPlane | None = None) -> None:
        self.node = node
        self.metrics = metrics
        self.handshake_timeout = handshake_timeout
        #: Opt-in admin plane: when set, ObsDump/ObsHealth requests are
        #: answered inline on the inbound connection instead of being
        #: dispatched to the protocol handler.
        self.admin = admin
        self.host = ""
        self.port = 0
        self.errors: list[tuple[str, Exception]] = []
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            try:
                src_id = await self._handshake(reader)
            except (CodecError, HandshakeError, ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                if isinstance(exc, asyncio.TimeoutError):
                    self.metrics.incr("net_timeouts")
                self.metrics.incr("net_handshakes_rejected")
                writer.transport.abort()
                return
            try:
                await self._serve_frames(src_id, reader, writer)
            finally:
                writer.transport.abort()
        finally:
            self._connections.discard(writer)

    async def _handshake(self, reader: asyncio.StreamReader) -> str:
        hello, _size = await read_frame(reader, self.handshake_timeout)
        if not isinstance(hello, codec.NetHello):
            raise HandshakeError(
                f"first frame was {type(hello).__name__}, not NetHello")
        if hello.wire_version != codec.WIRE_VERSION:
            raise HandshakeError(
                f"peer {hello.node_id!r} speaks wire version "
                f"{hello.wire_version}, we speak {codec.WIRE_VERSION}")
        return hello.node_id

    async def _serve_frames(self, src_id: str,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                message, size = await read_frame(reader)
            except (BadMagic, BadVersion, FrameTooLarge, TruncatedFrame):
                # Framing is gone; nothing after this point parses.
                self.metrics.incr("net_frames_rejected")
                return
            except CodecError:
                # Bad body inside a well-framed message: skip it, the
                # stream itself is still aligned on frame boundaries.
                self.metrics.incr("net_frames_rejected")
                continue
            except (ConnectionError, OSError):
                return
            self.metrics.incr("net_bytes_received", size)
            if isinstance(message, codec.FrameBatch):
                # One wire frame, several protocol messages: the frame
                # counter tracks messages so coalescing is invisible to
                # traffic accounting; dispatch stays per-message, so one
                # bad handler cannot head-of-line block its batch mates.
                self.metrics.incr("net_batches_received")
                self.metrics.incr("net_frames_received",
                                  len(message.messages))
                for inner in message.messages:
                    self._dispatch(src_id, inner)
                continue
            self.metrics.incr("net_frames_received")
            if self.admin is not None:
                reply = self.admin.maybe_handle(self.node, message)
                if reply is not None:
                    self.metrics.incr("obs_admin_requests")
                    try:
                        await write_frame(writer, reply)
                    except (ConnectionError, OSError):
                        return
                    continue
            self._dispatch(src_id, message)

    def _dispatch(self, src_id: str, message: Any) -> None:
        node = self.node
        if node.crashed:
            self.metrics.incr("net_frames_dropped")
            self.metrics.incr("net_drop_node_crashed")
            return
        context = None
        if isinstance(message, TraceCarrier):
            context, message = message.context, message.message
        node.messages_received += 1
        obs = node.simulator.obs
        try:
            if context is not None and obs is not None:
                obs.contexts_received += 1
                restore_context(obs, context,
                                node.on_message, (src_id, message))
            else:
                node.on_message(src_id, message)
        except Exception as exc:
            self.metrics.incr("net_handler_errors")
            self.errors.append((src_id, exc))

    def abort_connections(self) -> int:
        """Abort every accepted inbound connection; returns the count.

        A crashed host does not politely close its sockets -- peers see
        connections reset and must walk the redial path.
        """
        aborted = 0
        for writer in list(self._connections):
            writer.transport.abort()
            aborted += 1
        return aborted

    async def suspend(self) -> None:
        """Stop listening and reset inbound connections (node crash).

        Keeps ``self.port`` so :meth:`resume` can rebind the same
        endpoint -- peers redial the address they already know.
        """
        # Swap-then-await: a concurrent suspend/aclose interleaving at
        # wait_closed() must see the listener already relinquished.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.abort_connections()

    async def resume(self) -> tuple[str, int]:
        """Rebind the previously bound (host, port) after a crash."""
        if self._server is not None:
            raise RuntimeError(f"{self.node.node_id} is already listening")
        return await self.start(self.host, self.port)

    async def aclose(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.abort_connections()

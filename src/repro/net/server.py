"""Socket runtime for unmodified protocol nodes.

The protocol core touches its environment through exactly three seams:
``simulator.fork_rng`` / ``Node.after`` / ``Node.now`` (time and
randomness) and ``network.transmit`` (messaging).  This module provides
real-time implementations of both seams --
:class:`RealtimeScheduler` maps timers onto the asyncio event loop, and
:class:`SocketNetwork` maps ``send`` onto a framed TCP connection pool
-- so ``MasterServer``, ``SlaveServer``, ``DirectoryServer``,
``AuditorServer`` and ``Client`` run over sockets without a single line
changed.

:class:`NodeServer` is the inbound half: one TCP listener per node,
accepting peer connections that open with a
:class:`~repro.net.codec.NetHello` and then carry protocol frames.
Malformed frames are counted and skipped (body-level garbage) or close
the connection (framing-level garbage); handler exceptions are captured,
not fatal -- a byzantine peer must not crash a server.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable

from repro.core.messages import Accusation, KeepAlive
from repro.metrics import MetricsRegistry
from repro.net import codec
from repro.net.errors import (
    BadMagic,
    BadVersion,
    CodecError,
    FrameTooLarge,
    HandshakeError,
    TruncatedFrame,
)
from repro.net.transport import ConnectionPool, read_frame, write_frame
from repro.obs.admin import AdminPlane, QosStatusReply, QosStatusRequest
from repro.obs.context import TraceCarrier
from repro.qos.ledger import AdmissionLedger
from repro.qos.queue import InboundQueue
from repro.qos.tokens import AdmissionPolicy, ClientAdmission
from repro.shard.wire import (
    ShardEnvelope,
    ShardStatusReply,
    ShardStatusRequest,
    shard_of,
)
from repro.sim.network import Network, Node
from repro.sim.simulator import EventHandle, Simulator, restore_context

#: Message classes the qos layer must NEVER shed: keep-alives carry the
#: Section 3.1 freshness bound every read hangs off, and accusations
#: carry Section 3.5's proof-of-misbehaviour.  Everything else is fair
#: game under overload (clients retry; the protocol tolerates loss).
PROTECTED_MESSAGE_TYPES: tuple[type, ...] = (KeepAlive, Accusation)


class RealtimeHandle(EventHandle):
    """An :class:`EventHandle` backed by a loop timer."""

    __slots__ = ("_timer",)

    def __init__(self, fire_at: float,
                 timer: "asyncio.TimerHandle | None" = None) -> None:
        super().__init__(fire_at)
        self._timer = timer

    def cancel(self) -> None:
        super().cancel()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class RealtimeScheduler(Simulator):
    """A :class:`Simulator` whose clock is the asyncio event loop's.

    ``fork_rng`` keeps the simulator's deterministic derivation (seed +
    fork order + label), so key material for a given deployment spec is
    reproducible even though event *timing* is real.  The discrete-event
    ``run_*`` methods are disabled: in real time, the loop runs itself.
    """

    def __init__(self, seed: int, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(seed)
        self._loop = loop
        self._live: set[RealtimeHandle] = set()

    @property
    def now(self) -> float:
        return self._loop.time()

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        # Unlike the simulator, real time advances *during* a handler, so
        # protocol code computing "deadline - now" can legitimately come
        # out a few microseconds negative.  "In the past" means "as soon
        # as possible" here.
        delay = max(0.0, delay)
        obs = self.obs
        if obs is not None and obs.current is not None:
            args = (obs, obs.current, callback, args)
            callback = restore_context
        handle = RealtimeHandle(self.now + delay)

        def fire() -> None:
            self._live.discard(handle)
            if not handle.cancelled:
                self.events_processed += 1
                callback(*args)

        handle._timer = self._loop.call_later(delay, fire)
        self._live.add(handle)
        return handle

    def cancel_all(self) -> None:
        """Cancel every outstanding timer (deployment shutdown)."""
        for handle in list(self._live):
            handle.cancel()
        self._live.clear()

    def pending_events(self) -> int:
        return sum(1 for handle in self._live if not handle.cancelled)

    def run_until(self, deadline: float) -> None:
        raise RuntimeError("RealtimeScheduler cannot be stepped; "
                           "the event loop drives time")

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        raise RuntimeError("RealtimeScheduler cannot be stepped; "
                           "the event loop drives time")


class SocketNetwork(Network):
    """The ``Network`` seam of one node, backed by a connection pool.

    Each node owns one ``SocketNetwork`` (one host's view of the world),
    unlike the simulator where a single fabric object holds every node.
    ``transmit`` hands the message to the pool; delivery accounting
    happens on the receiving :class:`NodeServer`.
    """

    def __init__(self, scheduler: RealtimeScheduler,
                 pool: ConnectionPool) -> None:
        super().__init__(scheduler)
        self.pool = pool

    def transmit(self, src_id: str, dst_id: str, message: Any) -> None:
        obs = self.simulator.obs
        if obs is not None and obs.current is not None:
            # Envelope, not rewrite: the carried message is re-encoded
            # by the same codec entry as before, so signatures inside it
            # verify byte-identically on the far side.
            message = TraceCarrier(context=obs.current, message=message)
        self.pool.send(dst_id, message)


class ShardedNetwork(SocketNetwork):
    """A tenant's outbound seam in a multi-tenant deployment.

    Every message is wrapped in a :class:`~repro.shard.wire.ShardEnvelope`
    naming the source and destination *tenants* and shipped to the
    destination's **host** listener, so connections coalesce per host
    pair instead of per tenant pair.  Like the trace carrier it wraps
    (envelope, not rewrite), the carried message is encoded by its own
    registry entry -- signed payloads cross the wire byte-identical.

    ``host_of`` is shared mutable state owned by the deployment: the
    rebalancer adds entries for new-generation tenants while traffic is
    flowing, and every tenant's network sees them immediately.
    """

    def __init__(self, scheduler: RealtimeScheduler, pool: ConnectionPool,
                 host_of: dict[str, str]) -> None:
        super().__init__(scheduler, pool)
        self.host_of = host_of

    def transmit(self, src_id: str, dst_id: str, message: Any) -> None:
        obs = self.simulator.obs
        if obs is not None and obs.current is not None:
            message = TraceCarrier(context=obs.current, message=message)
        shard = shard_of(dst_id) or shard_of(src_id) or ""
        envelope = ShardEnvelope(shard_id=shard, src=src_id, dst=dst_id,
                                 message=message)
        self.pool.send(self.host_of.get(dst_id, dst_id), envelope)


class NodeServer:
    """One node's TCP listener plus frame dispatch.

    ``errors`` collects handler exceptions (with the offending source and
    message) so tests can assert clean runs; production callers would
    drain it into logging.

    With a :class:`~repro.qos.tokens.AdmissionPolicy` the listener grows
    a serving plane: per-client frame/byte token buckets ahead of
    dispatch (seeded shed decisions, per-reason ``qos_shed_*``
    counters), a bounded inbox between decode and dispatch
    (:class:`~repro.qos.queue.InboundQueue`; keep-alives and accusations
    are never shed) and an idle-connection reaper.  ``qos=None`` (the
    default) keeps the pre-qos behaviour: unbounded inline dispatch.
    """

    def __init__(self, node: Node, metrics: MetricsRegistry,
                 handshake_timeout: float = 5.0,
                 admin: AdminPlane | None = None,
                 qos: AdmissionPolicy | None = None,
                 qos_rng: random.Random | None = None,
                 ledger: AdmissionLedger | None = None) -> None:
        self.node = node
        self.metrics = metrics
        self.handshake_timeout = handshake_timeout
        #: Opt-in admin plane: when set, ObsDump/ObsHealth/QosStatus
        #: requests are answered inline on the inbound connection instead
        #: of being dispatched to the protocol handler.
        self.admin = admin
        self.qos = qos
        #: Opt-in per-principal admission: when set, buckets come from
        #: the (deployment-shared) ledger keyed by key fingerprint, so
        #: reconnect churn cannot mint fresh allowances.
        self.ledger = ledger
        #: Tenant registry: node id -> hosted node.  The anchor node is
        #: always present under its own id; multi-tenant deployments
        #: add one entry per per-shard tenant (see ``add_tenant``).
        #: :class:`~repro.shard.wire.ShardEnvelope` frames route here;
        #: bare frames go to the anchor (single-tenant back-compat).
        self._tenants: dict[str, Node] = {node.node_id: node}
        #: Seeded stream for shed decisions (deployments derive it from
        #: the spec seed so a shed schedule replays).
        self.qos_rng = qos_rng if qos_rng is not None else random.Random(0)
        self.host = ""
        self.port = 0
        self.errors: list[tuple[str, Exception]] = []
        #: Frames shed by this listener (all reasons), for QosStatus.
        self.shed_total = 0
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._admission: dict[str, ClientAdmission] = {}
        self._inbox = InboundQueue(qos.inbox_limit) if qos is not None \
            else None
        self._inbox_ready = asyncio.Event()
        self._dispatch_task: "asyncio.Task[None] | None" = None

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self._inbox is not None and self._dispatch_task is None:
            self._dispatch_task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(),
                name=f"qos-dispatch:{self.node.node_id}")
        return self.host, self.port

    # -- multi-tenancy (repro.shard) ----------------------------------------

    def add_tenant(self, node: Node) -> None:
        """Host another node behind this listener."""
        if node.node_id in self._tenants:
            raise ValueError(f"tenant {node.node_id!r} already hosted on "
                             f"{self.node.node_id!r}")
        self._tenants[node.node_id] = node

    def replace_tenant(self, node: Node) -> Node | None:
        """Swap the node serving an existing tenant id (shard
        retirement installs a ``WrongShard``-answering stub here)."""
        previous = self._tenants.get(node.node_id)
        self._tenants[node.node_id] = node
        return previous

    def tenants(self) -> dict[str, Node]:
        return dict(self._tenants)

    def shard_status(self) -> ShardStatusReply:
        """Hosted tenants grouped by shard (ShardStatus admin reply)."""
        shards: dict[str, list[str]] = {}
        unsharded: list[str] = []
        for tenant_id in self._tenants:
            shard_id = shard_of(tenant_id)
            if shard_id is None:
                unsharded.append(tenant_id)
            else:
                shards.setdefault(shard_id, []).append(tenant_id)
        return ShardStatusReply(
            host_id=self.node.node_id,
            now=self.node.simulator.now,
            shards=tuple((shard_id, tuple(sorted(ids)))
                         for shard_id, ids in sorted(shards.items())),
            unsharded=tuple(sorted(unsharded)))

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancels handler tasks parked in the shed
            # penalty sleep; completing normally keeps the streams
            # done-callback from logging the cancellation.
            writer.transport.abort()
        finally:
            self._connections.discard(writer)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            src_id = await self._handshake(reader)
        except (CodecError, HandshakeError, ConnectionError, OSError,
                asyncio.TimeoutError) as exc:
            if isinstance(exc, asyncio.TimeoutError):
                self.metrics.incr("net_timeouts")
            self.metrics.incr("net_handshakes_rejected")
            writer.transport.abort()
            return
        try:
            await self._serve_frames(src_id, reader, writer)
        finally:
            writer.transport.abort()

    async def _handshake(self, reader: asyncio.StreamReader) -> str:
        hello, _size = await read_frame(reader, self.handshake_timeout)
        if not isinstance(hello, codec.NetHello):
            raise HandshakeError(
                f"first frame was {type(hello).__name__}, not NetHello")
        if hello.wire_version != codec.WIRE_VERSION:
            raise HandshakeError(
                f"peer {hello.node_id!r} speaks wire version "
                f"{hello.wire_version}, we speak {codec.WIRE_VERSION}")
        return hello.node_id

    async def _serve_frames(self, src_id: str,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        qos = self.qos
        idle = qos.idle_timeout if qos is not None else None
        while True:
            try:
                message, size = await read_frame(reader, idle)
            except asyncio.TimeoutError:
                # Idle reaper: handshaked but silent past the allowance
                # -- the slot goes back to the pool (peers redial).
                self.metrics.incr("net_timeouts")
                self._count_shed(src_id, "idle")
                return
            except (BadMagic, BadVersion, FrameTooLarge, TruncatedFrame):
                # Framing is gone; nothing after this point parses.
                self._reject(src_id, "framing")
                return
            except CodecError:
                # Bad body inside a well-framed message: skip it, the
                # stream itself is still aligned on frame boundaries.
                self._reject(src_id, "body")
                continue
            except (ConnectionError, OSError):
                return
            self.metrics.incr("net_bytes_received", size)
            if isinstance(message, codec.FrameBatch):
                # One wire frame, several protocol messages: the frame
                # counter tracks messages so coalescing is invisible to
                # traffic accounting; dispatch stays per-message, so one
                # bad handler cannot head-of-line block its batch mates.
                self.metrics.incr("net_batches_received")
                self.metrics.incr("net_frames_received",
                                  len(message.messages))
                share = size / max(1, len(message.messages))
                shed_any = False
                for inner in message.messages:
                    if self._admit(src_id, inner, share):
                        shed_any = True
                if shed_any and qos is not None and qos.shed_penalty > 0:
                    await asyncio.sleep(qos.shed_penalty)
                continue
            self.metrics.incr("net_frames_received")
            if self.admin is not None:
                reply: object | None
                if isinstance(message, QosStatusRequest):
                    reply = self.qos_status()
                elif isinstance(message, ShardStatusRequest):
                    reply = self.shard_status()
                else:
                    reply = self.admin.maybe_handle(self.node, message)
                if reply is not None:
                    self.metrics.incr("obs_admin_requests")
                    try:
                        await write_frame(writer, reply)
                    except (ConnectionError, OSError):
                        return
                    continue
            if self._admit(src_id, message, float(size)) \
                    and qos is not None and qos.shed_penalty > 0:
                # Turn the shed into backpressure: stall this reader so
                # the over-quota pipeline slows at the source instead
                # of returning as a synchronized retry wave.  Only this
                # connection waits; everyone else's reader runs on.
                await asyncio.sleep(qos.shed_penalty)

    # -- wire-level admission (repro.qos) -----------------------------------

    def _admit(self, src_id: str, message: Any, byte_cost: float) -> bool:
        """Rate-limit and enqueue one decoded message, or shed it.

        Returns True when the admission caused a shed (this message
        went over quota, or its arrival evicted a queued one), so the
        serve loop can penalize the offending connection.
        """
        qos = self.qos
        if qos is None:
            self._dispatch(src_id, message)
            return False
        protected = self._is_protected(message)
        # Attribution: a ShardEnvelope names the *tenant* that sent the
        # message; the connection-level hello only names the peer host.
        # Charging the envelope's source keeps per-shard/per-principal
        # accounting meaningful when many tenants share one connection.
        if isinstance(message, ShardEnvelope):
            principal, shard_id = message.src, message.shard_id
        else:
            principal, shard_id = src_id, ""
        if not protected and qos.limits_frames:
            now = self.node.simulator.now
            client = self._account_for(principal, now)
            reason = client.admit(now, byte_cost, self.qos_rng, qos)
            if reason is not None:
                self._count_shed(principal, reason, shard_id)
                return True
        assert self._inbox is not None
        victim = self._inbox.put((principal, message), protected=protected)
        self._inbox_ready.set()
        if victim is not None:
            self._count_shed(victim[0], "queue_full")
            return True
        return False

    def _account_for(self, principal: str, now: float) -> ClientAdmission:
        """The admission account charged for ``principal``'s traffic."""
        if self.ledger is not None:
            return self.ledger.account(principal, now)
        client = self._admission.get(principal)
        if client is None:
            assert self.qos is not None
            client = ClientAdmission(self.qos, now)
            self._admission[principal] = client
        return client

    def _is_protected(self, message: Any) -> bool:
        """Keep-alives and accusations bypass every shed decision."""
        if isinstance(message, ShardEnvelope):
            message = message.message
        if isinstance(message, TraceCarrier):
            message = message.message
        return isinstance(message, PROTECTED_MESSAGE_TYPES)

    def _count_shed(self, src_id: str, reason: str,
                    shard_id: str = "") -> None:
        self.shed_total += 1
        self.metrics.incr("qos_shed_total")
        self.metrics.incr(f"qos_shed_{reason}")
        self.metrics.incr(f"qos_shed_from_{src_id}")
        if shard_id:
            self.metrics.incr(f"qos_shed_shard_{shard_id}")

    def _reject(self, src_id: str, kind: str) -> None:
        """Count one malformed frame, split by layer, with attribution.

        The aggregate ``net_frames_rejected`` is retained (dashboards
        and older tests key on it); ``kind`` is ``framing`` (header-
        level garbage, connection closes) or ``body`` (well-framed but
        undecodable payload, stream continues).  Under qos, rejects
        also burn the sender's admission tokens so repeat offenders
        shed themselves.
        """
        self.metrics.incr("net_frames_rejected")
        self.metrics.incr(f"net_frames_rejected_{kind}")
        self.metrics.incr(f"net_rejected_from_{src_id}")
        qos = self.qos
        if qos is not None and qos.limits_frames:
            self._account_for(src_id, self.node.simulator.now).strike(qos)

    async def _dispatch_loop(self) -> None:
        """Drain the bounded inbox into the protocol handler."""
        inbox = self._inbox
        assert inbox is not None
        while True:
            # Clear-then-drain-then-wait: no await between the clear and
            # the wait, so a put landing mid-drain re-sets the event and
            # the next iteration picks it up (never a lost wakeup).
            self._inbox_ready.clear()
            drained = 0
            while True:
                entry = inbox.get()
                if entry is None:
                    break
                self._dispatch(entry[0], entry[1])
                drained += 1
                if drained % 16 == 0:
                    # Yield mid-backlog so a deep inbox cannot stall
                    # the loop (readers and keep-alive timers keep
                    # running); puts landing during the yield re-set
                    # the event and are drained before the wait below.
                    await asyncio.sleep(0)
            await self._inbox_ready.wait()

    async def _stop_dispatch(self) -> None:
        # Swap-then-await (see suspend): a concurrent stop must observe
        # the task slot already relinquished before we block.
        task, self._dispatch_task = self._dispatch_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._inbox is not None:
            # A crashed host loses its queued-but-undispatched frames.
            self._inbox.clear()
            self._inbox_ready.clear()

    def qos_status(self) -> QosStatusReply:
        """This listener's admission state (QosStatus admin reply).

        Built from server-local state, not the metrics registry: the
        registry is shared across a deployment, so its ``qos_shed_*``
        counters cannot be attributed to one node.
        """
        pool = getattr(self.node.network, "pool", None)
        breakers: tuple[tuple[str, str], ...] = ()
        trips = 0
        if pool is not None:
            breakers = tuple(sorted(pool.breaker_states().items()))
            trips = pool.breaker_trips()
        return QosStatusReply(
            node_id=self.node.node_id,
            now=self.node.simulator.now,
            shed_total=float(self.shed_total),
            inbox_depth=len(self._inbox) if self._inbox is not None else 0,
            inbox_shed=self._inbox.shed if self._inbox is not None else 0,
            breakers=breakers,
            breaker_trips=trips)

    def _dispatch(self, src_id: str, message: Any) -> None:
        node = self.node
        if isinstance(message, ShardEnvelope):
            envelope = message
            src_id, message = envelope.src, envelope.message
            tenant = self._tenants.get(envelope.dst)
            if tenant is None:
                self.metrics.incr("net_frames_dropped")
                self.metrics.incr("shard_drop_unknown_tenant")
                return
            node = tenant
            if envelope.shard_id:
                self.metrics.incr(f"shard_{envelope.shard_id}_frames")
        if node.crashed:
            self.metrics.incr("net_frames_dropped")
            self.metrics.incr("net_drop_node_crashed")
            return
        context = None
        if isinstance(message, TraceCarrier):
            context, message = message.context, message.message
        node.messages_received += 1
        obs = node.simulator.obs
        try:
            if context is not None and obs is not None:
                obs.contexts_received += 1
                restore_context(obs, context,
                                node.on_message, (src_id, message))
            else:
                node.on_message(src_id, message)
        except Exception as exc:
            self.metrics.incr("net_handler_errors")
            self.errors.append((src_id, exc))

    def abort_connections(self) -> int:
        """Abort every accepted inbound connection; returns the count.

        A crashed host does not politely close its sockets -- peers see
        connections reset and must walk the redial path.
        """
        aborted = 0
        for writer in list(self._connections):
            writer.transport.abort()
            aborted += 1
        return aborted

    async def suspend(self) -> None:
        """Stop listening and reset inbound connections (node crash).

        Keeps ``self.port`` so :meth:`resume` can rebind the same
        endpoint -- peers redial the address they already know.
        """
        # Swap-then-await: a concurrent suspend/aclose interleaving at
        # wait_closed() must see the listener already relinquished.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.abort_connections()
        await self._stop_dispatch()

    async def resume(self) -> tuple[str, int]:
        """Rebind the previously bound (host, port) after a crash."""
        if self._server is not None:
            raise RuntimeError(f"{self.node.node_id} is already listening")
        return await self.start(self.host, self.port)

    async def aclose(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.abort_connections()
        await self._stop_dispatch()

"""Versioned, length-prefixed binary wire format for protocol messages.

Frame layout (all integers big-endian)::

    +----+----+---------+---------+------------------+
    | 'R'| 'N'| version | flags   | body length u32  |  8-byte header
    +----+----+---------+---------+------------------+
    | body: one encoded value                        |
    +------------------------------------------------+

The body is a self-describing tagged encoding of plain Python data
(None, bools, arbitrary-precision ints, floats, str, bytes, lists,
tuples, dicts, sets) plus *extensions*: registered dataclasses encoded
as their wire type id followed by the tuple of ``__init__`` field
values.  Because dataclasses round-trip field-for-field, the
``canonical_bytes`` signed payloads rebuilt on the receiving side are
byte-identical to the sender's, so **signatures verify unchanged across
the wire** -- no re-signing, no trusted serialisation step.

The extension registry is append-only: ids 1-31 are reserved for
infrastructure carriers (handshake, certificates, public keys, broadcast
envelopes, content-store snapshots); ids 32+ map positionally onto
:data:`repro.core.messages.WIRE_MESSAGE_TYPES`.  Reordering either is a
wire-format break and requires bumping :data:`WIRE_VERSION`.

Hostile input is expected: every decode error is a
:class:`~repro.net.errors.CodecError` subclass, never an uncaught
``IndexError``/``struct.error``, so servers can drop bad frames without
dying.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Iterator

from repro.broadcast.totalorder import BroadcastEnvelope
from repro.content.store import ContentStore, store_from_wire
from repro.core.messages import WIRE_MESSAGE_TYPES
from repro.core.trusted import CertAnnouncement
from repro.crypto.certificates import Certificate
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signatures import HMACPublicKey
from repro.net.errors import (
    BadMagic,
    BadVersion,
    CodecError,
    FrameTooLarge,
    TruncatedFrame,
    UnknownWireType,
)
from repro.obs.admin import (
    ObsDumpReply,
    ObsDumpRequest,
    ObsHealthReply,
    ObsHealthRequest,
    QosStatusReply,
    QosStatusRequest,
)
from repro.obs.context import TraceCarrier, TraceContext
from repro.shard.map import ShardMap
from repro.shard.wire import (
    ShardEnvelope,
    ShardMapReply,
    ShardMapRequest,
    ShardStatusReply,
    ShardStatusRequest,
    WrongShard,
)

MAGIC = b"RN"
WIRE_VERSION = 1
HEADER_SIZE = 8
#: Upper bound on a frame body; a full MiniDB snapshot fits comfortably,
#: while a hostile 4 GiB length prefix is rejected before allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">2sBBI")

# -- value tags -------------------------------------------------------------

_T_NONE = 0x4E  # 'N'
_T_TRUE = 0x54  # 'T'
_T_FALSE = 0x46  # 'F'
_T_INT = 0x69  # 'i'
_T_FLOAT = 0x66  # 'f'
_T_STR = 0x73  # 's'
_T_BYTES = 0x62  # 'b'
_T_LIST = 0x6C  # 'l'
_T_TUPLE = 0x74  # 't'
_T_DICT = 0x64  # 'd'
_T_SET = 0x53  # 'S'
_T_FROZENSET = 0x5A  # 'Z'
_T_EXT = 0x78  # 'x'


@dataclasses.dataclass(frozen=True, slots=True)
class NetHello:
    """First frame on every connection: who is dialling in.

    ``wire_version`` lets a listener reject a peer speaking a different
    format before misinterpreting its frames.
    """

    node_id: str
    wire_version: int = WIRE_VERSION


@dataclasses.dataclass(frozen=True, slots=True)
class FrameBatch:
    """Coalesced carrier: several protocol messages in one wire frame.

    The pipelined sender (:class:`repro.net.transport.ConnectionPool`)
    drains its whole per-peer queue per wakeup and ships the backlog as
    one ``FrameBatch`` -- one header, one write, one drain -- instead of
    one frame per message.  Like :class:`~repro.obs.context.TraceCarrier`
    it is an *envelope*: each carried message is encoded by its own
    registry entry, so signed payloads inside are byte-identical to an
    unbatched send and every signature verifies unchanged.  Receivers
    unpack in order, preserving per-peer FIFO delivery.
    """

    messages: tuple[Any, ...]


# -- extension registry -----------------------------------------------------

_EncodeFn = Callable[[Any, bytearray], None]
_DecodeFn = Callable[[memoryview, int], "tuple[Any, int]"]

_BY_TYPE: dict[type, int] = {}
_ENCODERS: dict[int, _EncodeFn] = {}
_DECODERS: dict[int, _DecodeFn] = {}
_TYPE_NAMES: dict[int, str] = {}


def _register(type_id: int, cls: type, encode: _EncodeFn,
              decode: _DecodeFn) -> None:
    if type_id in _DECODERS:
        raise ValueError(f"duplicate wire type id {type_id}")
    if cls in _BY_TYPE:
        raise ValueError(f"{cls.__name__} already registered")
    _BY_TYPE[cls] = type_id
    _ENCODERS[type_id] = encode
    _DECODERS[type_id] = decode
    _TYPE_NAMES[type_id] = cls.__name__


def registered_wire_types() -> dict[int, str]:
    """Wire type id -> class name, for tests and docs."""
    return dict(_TYPE_NAMES)


def wire_type_id(cls: type) -> int:
    """The registered wire id for ``cls`` (KeyError if unregistered)."""
    return _BY_TYPE[cls]


# -- varint (unsigned LEB128) ----------------------------------------------


def _append_varint(out: bytearray, value: int) -> None:
    """Append a LEB128 varint directly to ``out`` (no temporaries)."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    _append_varint(out, value)
    return bytes(out)


def _decode_varint(buf: memoryview, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise TruncatedFrame("varint runs past end of frame")
        if shift > 63:
            raise CodecError("varint too long")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# -- value encoding ---------------------------------------------------------


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        length = (value.bit_length() + 8) // 8  # room for the sign bit
        out.append(_T_INT)
        _append_varint(out, length)
        out += value.to_bytes(length, "big", signed=True)
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += struct.pack(">d", value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _append_varint(out, len(raw))
        out += raw
    elif type(value) in (bytes, bytearray, memoryview):
        raw = bytes(value)
        out.append(_T_BYTES)
        _append_varint(out, len(raw))
        out += raw
    elif type(value) is list:
        out.append(_T_LIST)
        _append_varint(out, len(value))
        for item in value:
            _encode_value(item, out)
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        _append_varint(out, len(value))
        for item in value:
            _encode_value(item, out)
    elif type(value) is dict:
        out.append(_T_DICT)
        _append_varint(out, len(value))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    elif type(value) in (set, frozenset):
        out.append(_T_SET if type(value) is set else _T_FROZENSET)
        # Deterministic order: sort members by their own encoding.
        encoded = sorted(encode_value(item) for item in value)
        _append_varint(out, len(encoded))
        for blob in encoded:
            out += blob
    else:
        _encode_extension(value, out)


def _encode_extension(value: Any, out: bytearray) -> None:
    cls = type(value)
    type_id = _BY_TYPE.get(cls)
    if type_id is None:
        # Store engines register their concrete classes lazily; fall back
        # to the ContentStore base entry for any engine instance.
        if isinstance(value, ContentStore):
            type_id = _BY_TYPE[ContentStore]
        else:
            raise CodecError(
                f"cannot encode {cls.__module__}.{cls.__name__} "
                "(not a wire-registered type)"
            )
    out.append(_T_EXT)
    _append_varint(out, type_id)
    _ENCODERS[type_id](value, out)


def encode_value(value: Any) -> bytes:
    """Encode one value (without frame header)."""
    out = bytearray()
    _encode_value(value, out)
    return bytes(out)


def _decode_value(buf: memoryview, pos: int) -> tuple[Any, int]:
    if pos >= len(buf):
        raise TruncatedFrame("value tag runs past end of frame")
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        length, pos = _decode_varint(buf, pos)
        raw = _take(buf, pos, length)
        return int.from_bytes(raw, "big", signed=True), pos + length
    if tag == _T_FLOAT:
        raw = _take(buf, pos, 8)
        return struct.unpack(">d", raw)[0], pos + 8
    if tag == _T_STR:
        length, pos = _decode_varint(buf, pos)
        raw = _take(buf, pos, length)
        try:
            return bytes(raw).decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from None
    if tag == _T_BYTES:
        length, pos = _decode_varint(buf, pos)
        raw = _take(buf, pos, length)
        return bytes(raw), pos + length
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        count, pos = _decode_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        if tag == _T_LIST:
            return items, pos
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_SET:
            return _to_set(items, frozen=False), pos
        return _to_set(items, frozen=True), pos
    if tag == _T_DICT:
        count, pos = _decode_varint(buf, pos)
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            item, pos = _decode_value(buf, pos)
            try:
                result[key] = item
            except TypeError as exc:
                raise CodecError(f"unhashable dict key: {exc}") from None
        return result, pos
    if tag == _T_EXT:
        type_id, pos = _decode_varint(buf, pos)
        decoder = _DECODERS.get(type_id)
        if decoder is None:
            raise UnknownWireType(f"unknown wire type id {type_id}")
        return decoder(buf, pos)
    raise CodecError(f"unknown value tag 0x{tag:02x}")


def _to_set(items: list[Any], frozen: bool) -> Any:
    try:
        return frozenset(items) if frozen else set(items)
    except TypeError as exc:
        raise CodecError(f"unhashable set member: {exc}") from None


def _take(buf: memoryview, pos: int, length: int) -> memoryview:
    if length < 0 or pos + length > len(buf):
        raise TruncatedFrame(
            f"need {length} bytes at offset {pos}, frame has {len(buf)}"
        )
    return buf[pos:pos + length]


def decode_value(data: bytes | memoryview) -> Any:
    """Decode one value; the buffer must contain exactly one value."""
    buf = memoryview(data)
    value, pos = _decode_value(buf, 0)
    if pos != len(buf):
        raise CodecError(
            f"{len(buf) - pos} trailing bytes after value"
        )
    return value


# -- framing ---------------------------------------------------------------


def encode_frame(value: Any) -> bytes:
    """Header + encoded body for one message.

    The body is encoded straight after a reserved header slot in one
    growable buffer, so a frame costs a single allocation instead of a
    header + body concatenation copy.
    """
    out = bytearray(HEADER_SIZE)
    _encode_value(value, out)
    length = len(out) - HEADER_SIZE
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"encoded body is {length} bytes "
            f"(limit {MAX_FRAME_BYTES})"
        )
    _HEADER.pack_into(out, 0, MAGIC, WIRE_VERSION, 0, length)
    return bytes(out)


def parse_header(header: bytes) -> int:
    """Validate an 8-byte header; return the body length."""
    if len(header) != HEADER_SIZE:
        raise TruncatedFrame(
            f"header is {len(header)} bytes, need {HEADER_SIZE}"
        )
    magic, version, _flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise BadMagic(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise BadVersion(f"unsupported wire version {version}")
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"declared body of {length} bytes (limit {MAX_FRAME_BYTES})"
        )
    return int(length)


def decode_frame(data: bytes | memoryview) -> Any:
    """Decode one complete frame (header + body)."""
    buf = memoryview(data)
    length = parse_header(bytes(buf[:HEADER_SIZE]))
    body = buf[HEADER_SIZE:]
    if len(body) != length:
        raise TruncatedFrame(
            f"header declares {length} body bytes, got {len(body)}"
        )
    return decode_value(body)


# -- extension codecs -------------------------------------------------------


def _dataclass_codec(cls: type) -> tuple[_EncodeFn, _DecodeFn]:
    """Generic codec for a dataclass: the tuple of init-field values.

    ``init=False`` fields (the ``_payload_cache`` memos) are neither sent
    nor restored -- a decoded message rebuilds its signed payload from
    scratch, exactly like a freshly constructed one.
    """
    init_fields = tuple(f.name for f in dataclasses.fields(cls) if f.init)

    def encode(value: Any, out: bytearray) -> None:
        values = tuple(getattr(value, name) for name in init_fields)
        _encode_value(values, out)

    def decode(buf: memoryview, pos: int) -> tuple[Any, int]:
        values, pos = _decode_value(buf, pos)
        if not isinstance(values, tuple) or len(values) != len(init_fields):
            raise CodecError(
                f"{cls.__name__} payload must be a "
                f"{len(init_fields)}-tuple"
            )
        try:
            return cls(*values), pos
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"cannot rebuild {cls.__name__}: {exc}"
            ) from None

    return encode, decode


def _encode_hmac_key(value: Any, out: bytearray) -> None:
    _encode_value(value.key_bytes, out)


def _decode_hmac_key(buf: memoryview, pos: int) -> tuple[Any, int]:
    raw, pos = _decode_value(buf, pos)
    if not isinstance(raw, bytes):
        raise CodecError("HMACPublicKey payload must be bytes")
    return HMACPublicKey(raw), pos


def _encode_store(value: Any, out: bytearray) -> None:
    try:
        payload = value.snapshot_wire()
    except NotImplementedError as exc:
        raise CodecError(str(exc)) from None
    _encode_value(payload, out)


# A node re-sends the identical TraceContext on every frame of a traced
# operation, and the obs-enabled hot path wraps *every* outgoing message
# in a TraceCarrier (see ``SocketNetwork.transmit``).  Memoising the
# context's encoded bytes turns the envelope's marginal cost into one
# dict lookup plus the carried message's own encoding.  The memo is
# bounded and keyed on the full field tuple, so the bytes are exactly
# what the generic dataclass codec would produce.
_TRACE_CTX_MEMO: dict[tuple[str, str, bool], bytes] = {}
_TRACE_CTX_MEMO_MAX = 4096


def _trace_context_payload(value: Any) -> bytes:
    key = (value.trace_id, value.span_id, value.sampled)
    cached = _TRACE_CTX_MEMO.get(key)
    if cached is None:
        buf = bytearray()
        _encode_value(key, buf)
        if len(_TRACE_CTX_MEMO) >= _TRACE_CTX_MEMO_MAX:
            _TRACE_CTX_MEMO.clear()
        cached = _TRACE_CTX_MEMO[key] = bytes(buf)
    return cached


def _encode_trace_context(value: Any, out: bytearray) -> None:
    out += _trace_context_payload(value)


def _encode_trace_carrier(value: Any, out: bytearray) -> None:
    # Hand-rolled equivalent of the generic two-field dataclass encoding
    # ((context, message) as a tuple), with the context's extension bytes
    # served from the memo.
    out.append(_T_TUPLE)
    _append_varint(out, 2)
    out.append(_T_EXT)
    _append_varint(out, _BY_TYPE[TraceContext])
    out += _trace_context_payload(value.context)
    _encode_value(value.message, out)


def _decode_store(buf: memoryview, pos: int) -> tuple[Any, int]:
    payload, pos = _decode_value(buf, pos)
    try:
        return store_from_wire(payload), pos
    except ValueError as exc:
        raise CodecError(f"bad store snapshot: {exc}") from None


def _iter_registrations() -> Iterator[tuple[int, type, _EncodeFn, _DecodeFn]]:
    # Infrastructure carriers: ids 1-31, append-only.
    yield (1, NetHello, *_dataclass_codec(NetHello))
    yield (2, Certificate, *_dataclass_codec(Certificate))
    yield (3, RSAPublicKey, *_dataclass_codec(RSAPublicKey))
    yield (4, HMACPublicKey, _encode_hmac_key, _decode_hmac_key)
    yield (5, BroadcastEnvelope, *_dataclass_codec(BroadcastEnvelope))
    yield (6, CertAnnouncement, *_dataclass_codec(CertAnnouncement))
    yield (7, ContentStore, _encode_store, _decode_store)
    # Observability (PR 5): the trace-context envelope and the admin
    # plane.  Appended after the PR 3 carriers -- an older peer that
    # receives one of these rejects the frame (UnknownWireType ->
    # net_frames_rejected) and stays frame-aligned, per the
    # back-compat contract above.
    yield (8, TraceContext, _encode_trace_context,
           _dataclass_codec(TraceContext)[1])
    yield (9, TraceCarrier, _encode_trace_carrier,
           _dataclass_codec(TraceCarrier)[1])
    yield (10, ObsDumpRequest, *_dataclass_codec(ObsDumpRequest))
    yield (11, ObsDumpReply, *_dataclass_codec(ObsDumpReply))
    yield (12, ObsHealthRequest, *_dataclass_codec(ObsHealthRequest))
    yield (13, ObsHealthReply, *_dataclass_codec(ObsHealthReply))
    # Batched hot path (PR 6): several messages coalesced into one frame
    # by the pipelined sender.  Appended after the PR 5 carriers -- same
    # back-compat contract: an older peer rejects the whole batch frame
    # (UnknownWireType -> net_frames_rejected) and stays aligned.
    yield (14, FrameBatch, *_dataclass_codec(FrameBatch))
    # Serving-plane admission control (PR 8): the qos status pair joins
    # the admin plane.  Appended after the PR 6 carrier -- same
    # back-compat contract as ids 10-13.
    yield (15, QosStatusRequest, *_dataclass_codec(QosStatusRequest))
    yield (16, QosStatusReply, *_dataclass_codec(QosStatusReply))
    # Namespace sharding (PR 10): the multi-tenant envelope, the
    # owner-signed shard map and its distribution pair, the re-home
    # redirect, and the shard admin-status pair.  Appended after the
    # PR 8 carriers -- same back-compat contract as ids 10-16.
    yield (17, ShardEnvelope, *_dataclass_codec(ShardEnvelope))
    yield (18, ShardMap, *_dataclass_codec(ShardMap))
    yield (19, ShardMapRequest, *_dataclass_codec(ShardMapRequest))
    yield (20, ShardMapReply, *_dataclass_codec(ShardMapReply))
    yield (21, WrongShard, *_dataclass_codec(WrongShard))
    yield (22, ShardStatusRequest, *_dataclass_codec(ShardStatusRequest))
    yield (23, ShardStatusReply, *_dataclass_codec(ShardStatusReply))
    # Protocol messages: ids 32+, positional on WIRE_MESSAGE_TYPES.
    for offset, message_cls in enumerate(WIRE_MESSAGE_TYPES):
        yield (32 + offset, message_cls, *_dataclass_codec(message_cls))


for _id, _cls, _enc, _dec in _iter_registrations():
    _register(_id, _cls, _enc, _dec)
del _id, _cls, _enc, _dec

"""Exception taxonomy for the socket runtime.

Codec errors subclass :class:`ValueError` so callers that treat "bad
bytes" generically can catch one familiar type; transport errors cover
connection lifecycle failures.  Servers treat every :class:`CodecError`
as a malformed/hostile peer frame: the offending connection is closed
and a ``net_frames_rejected`` metric is bumped, but the server keeps
serving -- a byzantine peer must not be able to crash a node by sending
garbage.
"""

from __future__ import annotations


class NetError(Exception):
    """Base class for everything raised by :mod:`repro.net`."""


class CodecError(NetError, ValueError):
    """A frame or value failed to encode or decode."""


class BadMagic(CodecError):
    """Frame did not start with the protocol magic bytes."""


class BadVersion(CodecError):
    """Frame advertises a wire-format version we do not speak."""


class FrameTooLarge(CodecError):
    """Frame body length exceeds the configured maximum."""


class TruncatedFrame(CodecError):
    """Frame or value ended before its declared length."""


class UnknownWireType(CodecError):
    """Frame carries a type id absent from the codec registry."""


class TransportError(NetError):
    """A connection-level failure (dial, handshake, send, timeout)."""


class HandshakeError(TransportError):
    """Peer's first frame was not a valid hello."""


class PeerUnknown(TransportError):
    """Destination node id has no known address."""


class RetriesExhausted(TransportError):
    """Connect/send retry budget spent without success."""

"""Cryptographic substrate for the secure replication system.

The paper relies on four primitives, all implemented here from scratch:

* **SHA-1** result hashing (the paper cites FIPS 180-1 [1]) -- wrapped in
  :mod:`repro.crypto.hashing` together with a canonical serialiser so that
  structurally equal query results hash identically.
* **Public-key signatures** for pledge packets, keep-alives and
  certificates -- a pure-Python RSA implementation in
  :mod:`repro.crypto.rsa`, plus a fast HMAC-based signer for large-scale
  simulations in :mod:`repro.crypto.signatures`.
* **Digital certificates** binding a server's contact address to its public
  key, issued under the content key (Section 2) --
  :mod:`repro.crypto.certificates`.
* **Merkle hash trees** used by the state-signing baseline (Section 5,
  citation [12]) -- :mod:`repro.crypto.merkle`.
"""

from repro.crypto.hashing import canonical_bytes, sha1_hex, sha1_digest
from repro.crypto.keys import KeyPair
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair
from repro.crypto.signatures import (
    HMACSigner,
    RSASigner,
    Signer,
    new_signer,
)
from repro.crypto.certificates import Certificate, CertificateError
from repro.crypto.merkle import MerkleTree, MerkleProof

__all__ = [
    "canonical_bytes",
    "sha1_hex",
    "sha1_digest",
    "KeyPair",
    "RSAKeyPair",
    "generate_rsa_keypair",
    "Signer",
    "RSASigner",
    "HMACSigner",
    "new_signer",
    "Certificate",
    "CertificateError",
    "MerkleTree",
    "MerkleProof",
]

"""Digital certificates binding server addresses to public keys.

Section 2 of the paper: "The master servers' public keys are certified
through digital certificates issued by the content owner (and signed with
the content key).  These certificates bind each server's contact address
(IP address and port number) to its public key, and are stored in a public
directory, indexed by content public key."

:class:`Certificate` is exactly that binding.  The same structure is reused
for slave keys handed from a master to a client during the setup phase --
there the *issuer* is the master rather than the content owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import fastpath
from repro.crypto.hashing import canonical_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import PublicKey, Signature


class CertificateError(Exception):
    """Raised when a certificate fails verification."""


@dataclass(frozen=True, slots=True)
class Certificate:
    """A signed (subject, address, public key, validity) binding."""

    subject_id: str
    address: str
    subject_public_key: PublicKey
    issuer_id: str
    issued_at: float
    expires_at: float
    signature: Signature
    #: Lazily-filled signed-payload memo; ``init=False`` keeps it out of
    #: ``dataclasses.replace`` copies, so altered certificates always
    #: re-serialise their own payload before verification.
    _payload_cache: bytes | None = field(default=None, init=False,
                                         compare=False, repr=False)

    @staticmethod
    def _signed_payload(subject_id: str, address: str,
                        subject_public_key: PublicKey,
                        issuer_id: str, issued_at: float,
                        expires_at: float) -> bytes:
        return canonical_bytes({
            "kind": "certificate",
            "subject_id": subject_id,
            "address": address,
            "public_key": repr(subject_public_key),
            "issuer_id": issuer_id,
            "issued_at": issued_at,
            "expires_at": expires_at,
        })

    @classmethod
    def issue(cls, issuer_keys: KeyPair, subject_id: str, address: str,
              subject_public_key: PublicKey, issued_at: float,
              lifetime: float = float("inf")) -> "Certificate":
        """Issue a certificate signed with ``issuer_keys``.

        ``lifetime`` defaults to infinite because the paper does not discuss
        expiry; benchmarks that rotate keys pass a finite lifetime.
        """
        expires_at = issued_at + lifetime
        payload = cls._signed_payload(subject_id, address, subject_public_key,
                                      issuer_keys.owner_id, issued_at, expires_at)
        cert = cls(
            subject_id=subject_id,
            address=address,
            subject_public_key=subject_public_key,
            issuer_id=issuer_keys.owner_id,
            issued_at=issued_at,
            expires_at=expires_at,
            signature=issuer_keys.sign(payload),
        )
        if fastpath.enabled():
            object.__setattr__(cert, "_payload_cache", payload)
        return cert

    def signed_payload(self) -> bytes:
        """The exact bytes this certificate's signature covers (memoised)."""
        if fastpath.enabled():
            cached = self._payload_cache
            if cached is not None:
                return cached
            payload = self._signed_payload(self.subject_id, self.address,
                                           self.subject_public_key,
                                           self.issuer_id, self.issued_at,
                                           self.expires_at)
            object.__setattr__(self, "_payload_cache", payload)
            return payload
        return self._signed_payload(self.subject_id, self.address,
                                    self.subject_public_key, self.issuer_id,
                                    self.issued_at, self.expires_at)

    def verify(self, verifier_keys: KeyPair, issuer_public_key: PublicKey,
               now: float | None = None) -> None:
        """Validate signature (and expiry, if ``now`` is given).

        Raises :class:`CertificateError` on any failure so callers cannot
        accidentally ignore a bad certificate.
        """
        if not verifier_keys.verify(issuer_public_key, self.signed_payload(),
                                    self.signature):
            raise CertificateError(
                f"certificate for {self.subject_id!r} has an invalid signature "
                f"(claimed issuer {self.issuer_id!r})"
            )
        if now is not None and now > self.expires_at:
            raise CertificateError(
                f"certificate for {self.subject_id!r} expired at "
                f"{self.expires_at} (now {now})"
            )

"""SHA-1 hashing and canonical serialisation.

The read protocol (Section 3.2) has the slave place "the secure hash (SHA-1)
of the result" in the pledge packet, and the client recompute that hash over
the result it received.  For this comparison to be meaningful the two sides
must serialise the result identically, so every value that can appear as a
query result is first reduced to *canonical bytes*:

* containers are serialised recursively with unambiguous framing;
* dict keys are emitted in sorted order;
* integers, floats, strings and bytes each get a distinct type tag so that
  ``1``, ``1.0`` and ``"1"`` never collide.

The auditor and the double-check path reuse the same canonicalisation, which
is what makes a pledge packet "an irrefutable proof" (Section 3.3): a hash
mismatch cannot be explained away by encoding differences.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any

from repro.crypto import fastpath

# Type tags keep differently-typed but similarly-printed values apart.
_TAG_NONE = b"N"
_TAG_BOOL = b"B"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"Y"
_TAG_LIST = b"L"
_TAG_TUPLE = b"T"
_TAG_DICT = b"D"
_TAG_SET = b"E"


def canonical_bytes(value: Any) -> bytes:
    """Serialise ``value`` to a canonical, injective byte string.

    Supports ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` and
    arbitrarily nested ``list``/``tuple``/``dict``/``set``/``frozenset``
    containers of those.  Raises :class:`TypeError` for anything else, which
    surfaces protocol bugs (e.g. a query result leaking a live object)
    instead of silently hashing its ``repr``.

    Repeated serialisations of equal values (repeated query wire forms,
    repeated results of popular reads) are memoised in a bounded LRU.
    The cache key is :func:`repro.crypto.fastpath.freeze_key`, which
    embeds the concrete type of every node, so the memo can never
    conflate values whose canonical bytes differ; values the freezer
    cannot key soundly simply take the uncached path.
    """
    if fastpath.enabled():
        try:
            key = fastpath.freeze_key(value)
        except fastpath.Unfreezable:
            key = None
        if key is not None:
            cached = fastpath.CANONICAL_CACHE.get(key)
            if cached is not fastpath.MISS:
                return cached
            out: list[bytes] = []
            _serialise(value, out)
            encoded = b"".join(out)
            fastpath.CANONICAL_CACHE.put(key, encoded)
            return encoded
    out = []
    _serialise(value, out)
    return b"".join(out)


def _serialise(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif isinstance(value, bool):
        # bool before int: bool is an int subclass.
        out.append(_TAG_BOOL + (b"1" if value else b"0"))
    elif isinstance(value, int):
        encoded = str(value).encode("ascii")
        out.append(_TAG_INT + _frame(encoded))
    elif isinstance(value, float):
        if value == 0.0:
            value = 0.0  # canonicalise -0.0: equal values, equal bytes
        # repr() round-trips floats exactly in Python 3.
        encoded = repr(value).encode("ascii")
        out.append(_TAG_FLOAT + _frame(encoded))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR + _frame(encoded))
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES + _frame(bytes(value)))
    elif isinstance(value, list):
        out.append(_TAG_LIST + _frame_count(len(value)))
        for item in value:
            _serialise(item, out)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE + _frame_count(len(value)))
        for item in value:
            _serialise(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT + _frame_count(len(value)))
        for key in sorted(value, key=_sort_key):
            _serialise(key, out)
            _serialise(value[key], out)
    elif isinstance(value, (set, frozenset)):
        out.append(_TAG_SET + _frame_count(len(value)))
        for item in sorted(value, key=_sort_key):
            _serialise(item, out)
    else:
        raise TypeError(
            f"cannot canonically serialise {type(value).__name__!r}; "
            "query results must be built from plain data types"
        )


def _sort_key(value: Any) -> tuple[str, str]:
    """Total order across mixed-type keys: by type name, then by repr."""
    return (type(value).__name__, repr(value))


def _frame(payload: bytes) -> bytes:
    """Length-prefix framing so concatenations cannot be ambiguous."""
    return str(len(payload)).encode("ascii") + b":" + payload


def _frame_count(count: int) -> bytes:
    return str(count).encode("ascii") + b";"


def constant_time_equals(left: str | bytes | bytearray,
                         right: str | bytes | bytearray) -> bool:
    """Compare two digests/signature encodings in constant time.

    Every hash that crosses a trust boundary -- a pledged result hash
    against a trusted recomputation, a Merkle leaf path against a
    signed root -- must be compared with :func:`hmac.compare_digest`
    rather than ``==`` so a real deployment does not leak a
    byte-position timing oracle (protolint rule PL002).  This wrapper
    additionally accepts the mixed ``str``-hex / ``bytes`` pairings
    protocol code actually produces, and treats a type mismatch as
    plain inequality instead of a ``TypeError``.
    """
    if isinstance(left, str) and isinstance(right, str):
        # compare_digest on str demands ASCII; hex digests always are,
        # but a malicious peer controls one side, so normalise first.
        return hmac.compare_digest(left.encode("utf-8"),
                                   right.encode("utf-8"))
    if isinstance(left, str) or isinstance(right, str):
        return False
    return hmac.compare_digest(bytes(left), bytes(right))


def sha1_digest(value: Any) -> bytes:
    """Return the 20-byte SHA-1 digest of ``value``'s canonical form."""
    return hashlib.sha1(canonical_bytes(value)).digest()


def sha1_hex(value: Any) -> str:
    """Return the 40-hex-character SHA-1 of ``value``'s canonical form.

    This is the hash that travels inside pledge packets.
    """
    return hashlib.sha1(canonical_bytes(value)).hexdigest()

"""Deterministic fallback randomness for key generation.

Every component that needs randomness is supposed to receive a seeded
``random.Random`` derived from :meth:`repro.sim.simulator.Simulator.fork_rng`,
so whole-system runs are bit-reproducible per seed (the invariant
protolint rule PL001 enforces).  Some entry points, however, allow the
``rng`` argument to be omitted for convenience -- ad-hoc scripts,
doctests, one-off key generation.  The seed tree satisfied those call
sites with a bare ``random.Random()``, which silently seeds from OS
entropy and breaks reproducibility for anyone who forgets to pass a
generator.

:func:`fallback_rng` replaces that pattern: each call returns a fresh
``random.Random`` drawn from a module-level master stream with a fixed
seed.  Two properties matter:

* **deterministic** -- a process that constructs signers in a fixed
  order (which the simulator guarantees, and scripts do by nature)
  gets the same keys on every run;
* **distinct** -- successive calls yield independent streams, so two
  signers built without an explicit ``rng`` never share key material
  (a shared key would let one simulated principal "forge" another's
  signatures and corrupt every detection experiment).

Tests that need isolation from construction order should keep passing
an explicit seeded ``rng``; :func:`reset` exists so test fixtures can
pin the fallback sequence itself.
"""

from __future__ import annotations

import random

#: Fixed master seed: arbitrary but stable across runs and versions.
_MASTER_SEED = "repro.crypto.entropy/v1"

_master = random.Random(_MASTER_SEED)


def fallback_rng() -> random.Random:
    """A fresh deterministic stream for callers that passed ``rng=None``.

    Draws a 128-bit seed from the module-level master stream, so the
    sequence of fallback generators is itself reproducible per process.
    """
    return random.Random(_master.getrandbits(128))


def reset() -> None:
    """Rewind the fallback sequence (test isolation hook)."""
    global _master
    _master = random.Random(_MASTER_SEED)

"""Key material abstractions shared by every server role.

The paper's Section 2 assigns a public/private key pair to the content
(the *content key*), to each master, and to each slave.  :class:`KeyPair`
wraps whichever concrete signer backs those keys, so protocol code can say
``server.keys.sign(payload)`` without caring whether the deployment uses
real RSA (tests, micro-benchmarks) or the fast HMAC signer (large-scale
simulations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import (
    MetricsLike,
    PublicKey,
    Signature,
    Signer,
    verify_signature,
)


@dataclass(slots=True)
class KeyPair:
    """A named keypair bound to one principal (owner, master or slave).

    ``owner_id`` exists purely for diagnostics -- signatures are validated
    against the public key, never against the name.  ``metrics``, when
    wired by the owning node, receives the verify-cache hit/miss counters
    so runs can report how much repeated crypto the fast path avoided.
    """

    owner_id: str
    signer: Signer
    metrics: MetricsLike | None = field(default=None, repr=False)
    signatures_made: int = field(default=0, repr=False)
    verifications_done: int = field(default=0, repr=False)

    @property
    def public_key(self) -> PublicKey:
        """Opaque public-key object to embed in certificates/directories."""
        return self.signer.public_key

    def sign(self, message: bytes) -> Signature:
        """Sign raw bytes with this principal's private key."""
        self.signatures_made += 1
        return self.signer.sign(message)

    def sign_many(self, messages: "list[bytes]") -> "list[Signature]":
        """Sign a batch of payloads (amortised key schedule for HMAC).

        Semantically ``[self.sign(m) for m in messages]``, including the
        per-signature accounting experiment E4 reads.
        """
        self.signatures_made += len(messages)
        sign_many = getattr(self.signer, "sign_many", None)
        if sign_many is not None:
            return sign_many(messages)
        return [self.signer.sign(m) for m in messages]

    def verify(self, public_key: object, message: bytes,
               signature: object) -> bool:
        """Verify a signature made by *another* principal's key.

        Dispatches on the scheme of ``public_key`` (not on this
        principal's own signer), so an HMAC-keyed client verifies
        RSA-signed certificates and stamps correctly.  Verification is a
        static property of the signature scheme, but the call is routed
        through a keypair so per-node crypto-operation counts (used by
        experiment E4) land on the node doing the work; repeated
        identical checks are answered by the process-wide verify cache
        (see :func:`repro.crypto.signatures.verify_signature`).
        """
        self.verifications_done += 1
        return verify_signature(public_key, message, signature,
                                metrics=self.metrics)

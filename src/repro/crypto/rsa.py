"""Pure-Python RSA key generation, signing and verification.

No third-party crypto package is available offline, so the reproduction
implements textbook RSA with full-domain hash padding directly on top of
Python integers.  The goal is behavioural fidelity for the paper's claims,
not production-grade cryptography:

* slaves must produce a *digital signature per read* (Section 3.2), which
  is the dominant cost the auditor avoids (Section 3.4) -- RSA's
  sign/verify cost asymmetry is real here because signing uses the private
  exponent ``d`` (CRT-accelerated) while verification uses a small public
  exponent;
* forging a signature without the private key must be infeasible *within
  the simulation's threat model* -- adversary strategies in
  :mod:`repro.core.adversary` never attempt key recovery, mirroring the
  paper's assumption that a client cannot "fake the slave's digital
  signature" (Section 3.3).

Key generation uses Miller-Rabin over a caller-supplied ``random.Random``
so that whole-system simulations remain fully deterministic per seed.
"""

from __future__ import annotations

import functools
import hashlib
import random
from dataclasses import dataclass

from repro.crypto import entropy

DEFAULT_KEY_BITS = 512
PUBLIC_EXPONENT = 65537

# Small primes used to cheaply reject most candidates before Miller-Rabin.
_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _is_probable_prime(candidate: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller-Rabin primality test with a small-prime pre-filter."""
    if candidate < 2:
        return False
    if candidate in (2, 3):
        return True
    if candidate % 2 == 0:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, candidate - 1)
        x = pow(a, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True, slots=True)
class RSAPublicKey:
    """The (n, e) half of an RSA key; safe to publish in certificates."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def fingerprint(self) -> str:
        """Short stable identifier used in logs and directory entries."""
        return _fingerprint(self.n, self.e)


@functools.lru_cache(maxsize=1024)
def _fingerprint(n: int, e: int) -> str:
    material = f"{n:x}:{e:x}".encode("ascii")
    return hashlib.sha1(material).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class RSAKeyPair:
    """A full RSA keypair with CRT parameters for fast signing.

    The private members (``d``, ``p``, ``q`` and the CRT exponents) never
    leave the owning server object in the simulation, mirroring the paper's
    "content private key is known only by the content owner" rule.
    """

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def _private_op(self, value: int) -> int:
        """RSA private-key operation using the Chinese Remainder Theorem."""
        m1 = pow(value, self.d_p, self.p)
        m2 = pow(value, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


def generate_rsa_keypair(
    bits: int = DEFAULT_KEY_BITS, rng: random.Random | None = None
) -> RSAKeyPair:
    """Generate an RSA keypair of roughly ``bits`` modulus bits.

    ``rng`` drives all randomness; passing a seeded ``random.Random`` makes
    key generation (and therefore all downstream signatures) reproducible.
    Omitting it falls back to the deterministic per-process stream in
    :mod:`repro.crypto.entropy` (never OS entropy).
    """
    if rng is None:
        rng = entropy.fallback_rng()
    if bits < 128:
        raise ValueError(f"RSA modulus of {bits} bits is too small to be useful")
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        d = pow(PUBLIC_EXPONENT, -1, phi)
        return RSAKeyPair(
            n=n,
            e=PUBLIC_EXPONENT,
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=pow(q, -1, p),
        )


@functools.lru_cache(maxsize=64)
def _fdh_params(n_bits: int) -> tuple[int, int]:
    """(target byte length, SHA-1 block count) for a modulus bit length."""
    target_len = (n_bits + 7) // 8 + 8
    return target_len, -(-target_len // hashlib.sha1().digest_size)


def _full_domain_hash(message: bytes, n: int) -> int:
    """Expand SHA-1 into a full-domain hash modulo ``n`` (FDH padding).

    Chains counters through SHA-1 until enough bytes cover the modulus,
    then reduces.  This is the classic RSA-FDH construction; it keeps the
    signed value spread over the whole group rather than signing a tiny
    160-bit integer directly.

    Each block is ``SHA-1(message || counter)``; the message prefix is
    hashed once and ``copy()``-ed per block, which produces identical
    digests to rehashing ``message + counter`` from scratch.
    """
    target_len, n_blocks = _fdh_params(n.bit_length())
    prefix = hashlib.sha1(message)
    blocks: list[bytes] = []
    for counter in range(n_blocks):
        block = prefix.copy()
        block.update(counter.to_bytes(4, "big"))
        blocks.append(block.digest())
    value = int.from_bytes(b"".join(blocks)[:target_len], "big")
    return value % n


def rsa_sign(keypair: RSAKeyPair, message: bytes) -> int:
    """Sign ``message`` with the private key (RSA-FDH)."""
    digest = _full_domain_hash(message, keypair.n)
    return keypair._private_op(digest)


def rsa_verify(public_key: RSAPublicKey, message: bytes,
               signature: object) -> bool:
    """Verify an RSA-FDH signature.  Returns False rather than raising.

    ``signature`` is whatever the wire delivered; anything that is not
    an in-range integer is simply an invalid signature.
    """
    if not isinstance(signature, int):
        return False
    if not 0 <= signature < public_key.n:
        return False
    expected = _full_domain_hash(message, public_key.n)
    return pow(signature, public_key.e, public_key.n) == expected


#: Bit length of the random exponents in the small-exponents batch test.
#: A batch forgery survives with probability 2**-BATCH_EXPONENT_BITS.
BATCH_EXPONENT_BITS = 32


def rsa_batch_verify(public_key: RSAPublicKey,
                     items: "list[tuple[bytes, object]]",
                     rng: random.Random | None = None) -> list[bool]:
    """Verify several signatures under one key; returns per-item verdicts.

    Uses the Bellare-Garay-Rabin small-exponents test: draw a random
    exponent ``r_i`` per item and check

        ``(prod s_i^{r_i})^e  ==  prod H(m_i)^{r_i}   (mod n)``

    which costs one full-size modular exponentiation plus 2k small ones
    instead of k full-size ones.  The naive product test (all ``r_i`` =
    1) is unsound -- two crafted bad signatures can cancel -- the random
    exponents reduce that to a 2**-32 fluke.  When the combined check
    fails, items are re-verified individually so exactly the bad ones
    are reported; the batch path can only ever *accept* what individual
    verification would accept.
    """
    if rng is None:
        rng = entropy.fallback_rng()
    verdicts = [isinstance(sig, int) and 0 <= sig < public_key.n
                for _msg, sig in items]
    candidates = [i for i, ok in enumerate(verdicts) if ok]
    if not candidates:
        return verdicts
    if len(candidates) == 1:
        i = candidates[0]
        verdicts[i] = rsa_verify(public_key, items[i][0], items[i][1])
        return verdicts
    n = public_key.n
    sig_side = 1
    hash_side = 1
    for i in candidates:
        message, signature = items[i]
        r = rng.getrandbits(BATCH_EXPONENT_BITS) | 1
        assert isinstance(signature, int)
        sig_side = sig_side * pow(signature, r, n) % n
        hash_side = hash_side * pow(_full_domain_hash(message, n), r, n) % n
    if pow(sig_side, public_key.e, n) == hash_side:
        return verdicts
    for i in candidates:
        verdicts[i] = rsa_verify(public_key, items[i][0], items[i][1])
    return verdicts

"""Process-wide hot-path caches for crypto and canonical serialisation.

The protocol re-does a lot of identical work: every read reply carries the
same master-signed :class:`~repro.core.messages.VersionStamp` until the
next keep-alive, every keep-alive fan-out asks each slave to verify the
same signature, the auditor re-hashes the same query wire forms, and the
client re-canonicalises payloads the signer already serialised.  All of
that is *pure* computation -- a deterministic function of immutable
inputs -- so this module provides two bounded LRU caches shared by the
whole process:

``VERIFY_CACHE``
    ``(public_key, payload, signature) -> bool``.  Because the key pins
    the exact signature bytes *and* the exact payload, a cached ``True``
    can never vouch for a different payload or a garbled signature: any
    mismatch produces a different key and falls through to a real
    verification.  Both outcomes are cached (a repeated forgery is
    rejected from cache just as cheaply).

``CANONICAL_CACHE``
    ``freeze(value) -> canonical_bytes(value)``.  The freeze key embeds
    the concrete type of every node of the value, so ``1``, ``1.0``,
    ``True`` and ``"1"`` -- which serialise differently -- can never
    share an entry (see :func:`freeze_key`).

Correctness invariant: caching only ever short-circuits a *repeated*
computation over identical inputs; it never conflates distinct payloads,
keys or signatures.  ``configure(enabled=False)`` restores the exact
seed behaviour (every verification and serialisation done from scratch),
which is what the before/after micro-benchmarks measure against.

The caches are process-global on purpose: a simulation run hosts many
principals in one process, and the paper's repeated-verification cost is
per *signature*, not per verifying node.  Simulated service times (the
metrics experiments report) are charged independently of this layer, so
enabling the caches changes wall-clock speed only, never simulated
results.
"""

from __future__ import annotations

from typing import Any

#: Sentinel distinguishing "not cached" from a cached falsy value.
MISS = object()

_DEFAULT_VERIFY_SIZE = 4096
_DEFAULT_CANONICAL_SIZE = 8192

_enabled = True


class LRUCache:
    """A small bounded LRU map with hit/miss counters.

    Backed by the insertion order of a plain ``dict``: a hit re-inserts
    the key (moving it to the most-recent end) and eviction pops the
    oldest entry.  Not thread-safe -- the simulator is single-threaded
    and the multiprocessing sweep runner gives each worker its own
    process (and therefore its own caches).
    """

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache size must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any:
        """Return the cached value or :data:`MISS`, updating recency."""
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            self.misses += 1
            return MISS
        data[key] = value
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.maxsize:
            del data[next(iter(data))]
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def resize(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache size must be positive, got {maxsize}")
        self.maxsize = maxsize
        data = self._data
        while len(data) > maxsize:
            del data[next(iter(data))]

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data


VERIFY_CACHE = LRUCache(_DEFAULT_VERIFY_SIZE)
CANONICAL_CACHE = LRUCache(_DEFAULT_CANONICAL_SIZE)


def enabled() -> bool:
    """Whether the fast path is active (checked on every hot call)."""
    return _enabled


def configure(enabled: bool | None = None,
              verify_cache_size: int | None = None,
              canonical_cache_size: int | None = None) -> None:
    """Toggle the fast path and/or resize its caches.

    Disabling also clears both caches so a subsequent enable starts
    cold -- that is what makes before/after comparisons honest.
    """
    global _enabled
    if verify_cache_size is not None:
        VERIFY_CACHE.resize(verify_cache_size)
    if canonical_cache_size is not None:
        CANONICAL_CACHE.resize(canonical_cache_size)
    if enabled is not None:
        _enabled = enabled
        if not enabled:
            VERIFY_CACHE.clear()
            CANONICAL_CACHE.clear()


def reset_stats() -> None:
    """Zero the hit/miss counters (cache contents are kept)."""
    for cache in (VERIFY_CACHE, CANONICAL_CACHE):
        cache.hits = 0
        cache.misses = 0


def stats() -> dict[str, int]:
    """Snapshot of the process-wide cache counters.

    These are the raw counters behind the ``verify_cache_hits/misses``
    and ``canonical_cache_hits/misses`` metrics that
    :meth:`repro.core.system.ReplicationSystem.summary` publishes per
    run (as deltas against the run's starting snapshot).
    """
    return {
        "verify_cache_hits": VERIFY_CACHE.hits,
        "verify_cache_misses": VERIFY_CACHE.misses,
        "canonical_cache_hits": CANONICAL_CACHE.hits,
        "canonical_cache_misses": CANONICAL_CACHE.misses,
    }


class Unfreezable(TypeError):
    """Raised by :func:`freeze_key` for values it cannot key soundly."""


def freeze_key(value: Any) -> Any:
    """Build a hashable cache key equivalent to ``value``'s canonical form.

    Injectivity contract (mirrors :mod:`repro.crypto.hashing`): two
    values get the same key **iff** their canonical byte serialisations
    are equal.

    * every scalar is keyed with its concrete type, so ``1`` / ``1.0`` /
      ``True`` / ``"1"`` never collide even though they compare equal or
      hash alike in spots;
    * ``bytes`` and ``bytearray`` share a key (they serialise the same);
    * ``set`` and ``frozenset`` share a key (ditto), and dicts are keyed
      order-insensitively, matching the sorted canonical emission;
    * exotic types (including subclasses of the supported ones, whose
      canonical form follows the base type) raise :class:`Unfreezable`
      so callers fall back to the uncached path rather than risk an
      unsound key.
    """
    cls = value.__class__
    if value is None or cls is bool or cls is int or cls is float \
            or cls is str or cls is bytes:
        return (cls, value)
    if cls is bytearray:
        return (bytes, bytes(value))
    if cls is list or cls is tuple:
        return (cls, tuple(freeze_key(item) for item in value))
    if cls is dict:
        return (dict, frozenset(
            (freeze_key(k), freeze_key(v)) for k, v in value.items()))
    if cls is set or cls is frozenset:
        return (frozenset, frozenset(freeze_key(item) for item in value))
    raise Unfreezable(
        f"cannot build a sound cache key for {cls.__name__!r}")

"""Signature schemes: real RSA and a fast HMAC stand-in.

Two interchangeable signers implement the :class:`Signer` protocol:

:class:`RSASigner`
    Pure-Python RSA-FDH (see :mod:`repro.crypto.rsa`).  Used wherever the
    *cost* of signing matters -- the crypto micro-benchmarks (experiment
    E10) and the auditor-throughput experiment (E4) that reproduce the
    paper's claim that the auditor wins by not signing.

:class:`HMACSigner`
    An HMAC-SHA1 "signature" where the verification key equals the signing
    key.  Within a simulation this is sound because adversary code never
    reads other nodes' key material -- exactly the paper's model, where a
    malicious slave can lie about *results* but cannot forge another
    party's signature.  It makes 100k-read simulations fast.

``new_signer`` picks a scheme by name so system configs can select one with
a string.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Protocol, Union

from repro.crypto import entropy, fastpath
from repro.crypto import rsa as _rsa

#: A well-formed signature: an RSA-FDH integer or an HMAC tag.  Values
#: received off the wire are *claimed* signatures and may be anything an
#: adversary crafts, so verification entry points accept ``object`` and
#: narrow with isinstance checks.
Signature = Union[int, bytes]


class MetricsLike(Protocol):
    """The slice of :class:`repro.metrics.registry.MetricsRegistry` the
    crypto layer reports into (structural, to avoid a package cycle)."""

    def incr(self, name: str, amount: float = 1.0) -> None: ...


class Signer(Protocol):
    """Minimal signature-scheme interface used by all protocol code."""

    @property
    def public_key(self) -> "PublicKey":
        """Public half, safe to publish."""

    def sign(self, message: bytes) -> Signature:
        """Produce a signature over ``message`` with the private half."""

    def verify_with(self, public_key: object, message: bytes,
                    signature: object) -> bool:
        """Check ``signature`` over ``message`` against ``public_key``."""


class RSASigner:
    """RSA-FDH signer; the production-faithful scheme."""

    scheme = "rsa"

    def __init__(self, keypair: _rsa.RSAKeyPair | None = None,
                 bits: int = _rsa.DEFAULT_KEY_BITS,
                 rng: random.Random | None = None) -> None:
        self._keypair = keypair or _rsa.generate_rsa_keypair(bits=bits, rng=rng)

    @property
    def public_key(self) -> _rsa.RSAPublicKey:
        return self._keypair.public_key

    def sign(self, message: bytes) -> int:
        return _rsa.rsa_sign(self._keypair, message)

    def sign_many(self, messages: "list[bytes]") -> "list[int]":
        """Sign a batch.  RSA signing is dominated by the CRT private
        operation, which cannot be shared across messages, so this is a
        plain loop -- provided for interface symmetry with
        :meth:`HMACSigner.sign_many`."""
        return [_rsa.rsa_sign(self._keypair, m) for m in messages]

    def verify_with(self, public_key: object, message: bytes,
                    signature: object) -> bool:
        if not isinstance(public_key, _rsa.RSAPublicKey):
            return False
        return _rsa.rsa_verify(public_key, message, signature)


class HMACPublicKey:
    """Wrapper marking an HMAC key as the 'public' verification handle.

    Simulation-only: possession of this object allows verification *and*
    forgery, so protocol code must never hand a node another node's key
    except through the certified channels the paper defines.  Honest and
    adversarial node implementations in :mod:`repro.core` uphold this.
    """

    __slots__ = ("key_bytes",)

    def __init__(self, key_bytes: bytes) -> None:
        self.key_bytes = key_bytes

    def fingerprint(self) -> str:
        return hashlib.sha1(self.key_bytes).hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HMACPublicKey) and other.key_bytes == self.key_bytes

    def __hash__(self) -> int:
        return hash(self.key_bytes)

    def __repr__(self) -> str:
        return f"HMACPublicKey({self.fingerprint()})"


class HMACSigner:
    """HMAC-SHA1 'signature' scheme for fast large-scale simulation."""

    scheme = "hmac"

    def __init__(self, key_bytes: bytes | None = None,
                 rng: random.Random | None = None) -> None:
        if key_bytes is None:
            rng = rng or entropy.fallback_rng()
            key_bytes = rng.getrandbits(256).to_bytes(32, "big")
        self._key = key_bytes
        # The HMAC key schedule (ipad/opad absorption) depends only on
        # the key; precompute it once and .copy() per signature.  Tags
        # are byte-identical to hmac.new(key, message, sha1).
        self._mac = hmac.new(key_bytes, digestmod=hashlib.sha1)

    @property
    def public_key(self) -> HMACPublicKey:
        return HMACPublicKey(self._key)

    def sign(self, message: bytes) -> bytes:
        mac = self._mac.copy()
        mac.update(message)
        return mac.digest()

    def sign_many(self, messages: "list[bytes]") -> "list[bytes]":
        """Sign a batch; one key-schedule copy per tag, no per-call
        ``hmac.new``.  Equivalent to ``[self.sign(m) for m in messages]``."""
        base = self._mac
        tags = []
        for message in messages:
            mac = base.copy()
            mac.update(message)
            tags.append(mac.digest())
        return tags

    def verify_with(self, public_key: object, message: bytes,
                    signature: object) -> bool:
        if not isinstance(public_key, HMACPublicKey):
            return False
        return _hmac_verify(public_key, message, signature)


#: The public-key objects the two schemes publish; certificates and
#: directory listings carry one of these.
PublicKey = Union[_rsa.RSAPublicKey, HMACPublicKey]


def _hmac_verify(public_key: HMACPublicKey, message: bytes,
                 signature: object) -> bool:
    if not isinstance(signature, (bytes, bytearray)):
        return False
    expected = hmac.new(public_key.key_bytes, message,
                        hashlib.sha1).digest()
    return hmac.compare_digest(expected, bytes(signature))


def verify_signature(public_key: object, message: bytes, signature: object,
                     metrics: "MetricsLike | None" = None) -> bool:
    """Verify a signature, dispatching on the *public key's* scheme.

    This is the verification entry point all protocol code uses (via
    :meth:`repro.crypto.keys.KeyPair.verify`).  Dispatching on the key
    rather than on the verifier's own signer is what lets a client whose
    personal keys are cheap HMAC verify RSA-signed certificates, stamps
    and pledges -- the mixed deployment every ``signer_scheme="rsa"``
    system actually is.  (Routing through the verifier's signer, as
    ``Signer.verify_with`` does, makes cross-scheme verification
    silently fail: clients could never complete setup against RSA
    masters.)

    Repeated verifications of the identical ``(public key, payload,
    signature)`` triple -- the same master stamp checked by every read
    reply in a keep-alive interval, the same keep-alive fan-out checked
    by every slave -- are answered from a bounded LRU.  The key pins the
    exact payload and signature bytes, so the cache can only ever
    short-circuit a *repeated* check: a garbled signature or a tampered
    payload produces a different key and is verified for real.  Both
    verdicts are cached (repeated forgeries are re-rejected cheaply).

    ``metrics``, when given, receives ``verify_cache_hits`` /
    ``verify_cache_misses`` counter increments so each simulation run
    can report how much crypto it actually avoided.
    """
    if fastpath.enabled():
        try:
            sig_key = bytes(signature) if isinstance(signature, bytearray) \
                else signature
            key = (public_key, message, sig_key)
            cached = fastpath.VERIFY_CACHE.get(key)
        except TypeError:
            key = None
            cached = fastpath.MISS
        if cached is not fastpath.MISS:
            if metrics is not None:
                metrics.incr("verify_cache_hits")
            return cached
        result = _verify_dispatch(public_key, message, signature)
        if key is not None:
            fastpath.VERIFY_CACHE.put(key, result)
        if metrics is not None:
            metrics.incr("verify_cache_misses")
        return result
    return _verify_dispatch(public_key, message, signature)


def verify_many(
    triples: "list[tuple[object, bytes, object]]",
    metrics: "MetricsLike | None" = None,
    rng: "random.Random | None" = None,
) -> "list[bool]":
    """Verify a batch of ``(public_key, message, signature)`` triples.

    RSA triples sharing a public key are checked together with the
    small-exponents batch test (:func:`repro.crypto.rsa.rsa_batch_verify`
    -- one full-size exponentiation for the whole group, individual
    fallback on mismatch), so a client validating a read quorum pays for
    roughly one verification instead of one per reply.  HMAC and unknown
    keys go through the normal dispatch.

    Every verdict is recorded in the fastpath verify cache under the
    same key :func:`verify_signature` uses, so per-reply validation code
    that re-checks the same triple afterwards hits the cache instead of
    redoing the crypto.  Verdicts are positionally aligned with the
    input and identical to calling :func:`verify_signature` per triple.
    """
    verdicts: "list[bool | None]" = [None] * len(triples)
    rsa_groups: dict[_rsa.RSAPublicKey, list[int]] = {}
    caching = fastpath.enabled()
    for i, (public_key, message, signature) in enumerate(triples):
        if caching:
            try:
                sig_key = bytes(signature) \
                    if isinstance(signature, bytearray) else signature
                cached = fastpath.VERIFY_CACHE.get(
                    (public_key, message, sig_key))
            except TypeError:
                cached = fastpath.MISS
            if cached is not fastpath.MISS:
                if metrics is not None:
                    metrics.incr("verify_cache_hits")
                verdicts[i] = cached
                continue
        if isinstance(public_key, _rsa.RSAPublicKey):
            rsa_groups.setdefault(public_key, []).append(i)
        else:
            verdicts[i] = verify_signature(public_key, message, signature,
                                           metrics)
    for public_key, indices in rsa_groups.items():
        items = [(triples[i][1], triples[i][2]) for i in indices]
        if len(items) == 1:
            group = [_rsa.rsa_verify(public_key, *items[0])]
        else:
            group = _rsa.rsa_batch_verify(public_key, items, rng=rng)
            if metrics is not None:
                metrics.incr("verify_batches")
        for i, verdict in zip(indices, group):
            verdicts[i] = verdict
            if metrics is not None:
                metrics.incr("verify_cache_misses")
            if caching:
                _public_key, message, signature = triples[i]
                try:
                    sig_key = bytes(signature) \
                        if isinstance(signature, bytearray) else signature
                    fastpath.VERIFY_CACHE.put(
                        (public_key, message, sig_key), verdict)
                except TypeError:
                    pass
    return [bool(v) for v in verdicts]


def _verify_dispatch(public_key: object, message: bytes,
                     signature: object) -> bool:
    """Scheme dispatch by public-key type; unknown keys verify nothing."""
    if isinstance(public_key, _rsa.RSAPublicKey):
        return _rsa.rsa_verify(public_key, message, signature)
    if isinstance(public_key, HMACPublicKey):
        return _hmac_verify(public_key, message, signature)
    return False


_SCHEMES = {"rsa": RSASigner, "hmac": HMACSigner}


def new_signer(scheme: str, rng: random.Random | None = None,
               rsa_bits: int = _rsa.DEFAULT_KEY_BITS) -> Signer:
    """Instantiate a signer by scheme name (``"rsa"`` or ``"hmac"``)."""
    if scheme == "rsa":
        return RSASigner(bits=rsa_bits, rng=rng)
    if scheme == "hmac":
        return HMACSigner(rng=rng)
    raise ValueError(
        f"unknown signature scheme {scheme!r}; expected one of {sorted(_SCHEMES)}"
    )

"""Merkle hash trees for the state-signing baseline.

Section 5: "With state signing, the data content is divided into small
(disjunct) subsets which are signed with a content private key ... some
form of hash-tree authentication [12] is normally used in this context."

The state-signing baseline (:mod:`repro.baselines.state_signing`) publishes
a Merkle root signed with the content key; untrusted storage serves items
with membership proofs that clients verify against the signed root.  The
tree supports incremental updates so the baseline can model writes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.hashing import canonical_bytes, constant_time_equals

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
_EMPTY_ROOT = hashlib.sha1(b"merkle-empty").digest()


def _hash_leaf(key: str, value: object) -> bytes:
    return hashlib.sha1(
        _LEAF_PREFIX + canonical_bytes(key) + canonical_bytes(value)
    ).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha1(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True, slots=True)
class MerkleProof:
    """Membership proof: the leaf's index plus sibling hashes to the root."""

    key: str
    value: object
    index: int
    siblings: tuple[bytes, ...]
    leaf_count: int

    def verify(self, root: bytes) -> bool:
        """Recompute the root from the leaf and siblings; compare."""
        if not 0 <= self.index < self.leaf_count:
            return False
        digest = _hash_leaf(self.key, self.value)
        position = self.index
        count = self.leaf_count
        for sibling in self.siblings:
            if position % 2 == 1:
                digest = _hash_node(sibling, digest)
            else:
                # A right sibling may be a duplicate of ``digest`` when the
                # level had odd width; either way the hash is the same maths.
                digest = _hash_node(digest, sibling)
            position //= 2
            count = (count + 1) // 2
        # The signed root comes from the publisher but the proof comes
        # from untrusted storage: compare in constant time (PL002).
        return count == 1 and constant_time_equals(digest, root)


class MerkleTree:
    """A Merkle tree over an ordered set of (key, value) leaves.

    Keys are kept sorted so that the tree is a deterministic function of
    the key-value map, independent of insertion order -- a requirement for
    the publisher and storage nodes in the baseline to agree on the root.
    """

    def __init__(self, items: Iterable[tuple[str, object]] = ()) -> None:
        self._items: dict[str, object] = dict(items)
        self._levels: list[list[bytes]] | None = None
        self._keys: list[str] = []

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def set(self, key: str, value: object) -> None:
        """Insert or update a leaf; invalidates the cached tree."""
        self._items[key] = value
        self._levels = None

    def delete(self, key: str) -> None:
        """Remove a leaf; raises KeyError if absent."""
        del self._items[key]
        self._levels = None

    def get(self, key: str) -> object:
        return self._items[key]

    def keys(self) -> Sequence[str]:
        self._ensure_built()
        return tuple(self._keys)

    def _ensure_built(self) -> None:
        if self._levels is not None:
            return
        self._keys = sorted(self._items)
        leaves = [_hash_leaf(key, self._items[key]) for key in self._keys]
        levels = [leaves]
        current = leaves
        while len(current) > 1:
            nxt: list[bytes] = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else current[i]
                nxt.append(_hash_node(left, right))
            levels.append(nxt)
            current = nxt
        self._levels = levels

    @property
    def root(self) -> bytes:
        """The 20-byte root hash; a fixed sentinel for the empty tree."""
        self._ensure_built()
        assert self._levels is not None
        if not self._levels[0]:
            return _EMPTY_ROOT
        return self._levels[-1][0]

    def prove(self, key: str) -> MerkleProof:
        """Build a membership proof for ``key``; raises KeyError if absent."""
        self._ensure_built()
        assert self._levels is not None
        try:
            index = self._keys.index(key)
        except ValueError:
            raise KeyError(key) from None
        siblings: list[bytes] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position - 1 if position % 2 == 1 else position + 1
            if sibling_index >= len(level):
                sibling_index = position  # odd level width: sibling is self
            siblings.append(level[sibling_index])
            position //= 2
        return MerkleProof(
            key=key,
            value=self._items[key],
            index=index,
            siblings=tuple(siblings),
            leaf_count=len(self._keys),
        )

"""Markdown run reports: one readable document per simulation run.

``render_markdown_report(system)`` turns a finished
:class:`~repro.core.system.ReplicationSystem` run into a self-contained
markdown document: deployment shape, traffic and defence counters,
latency percentiles, auditor statistics with backlog sparkline, the
accepted-read classification and the consistency-window verdict.

The CLI exposes it as ``repro-sim run --report FILE``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.system import ReplicationSystem
from repro.metrics import summarize


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_markdown_report(system: ReplicationSystem,
                           title: str = "Simulation run report") -> str:
    """Render the run's outcome as a markdown document."""
    counters = system.metrics.snapshot()

    def c(name: str) -> int:
        return int(counters.get(name, 0))

    classification = system.classify_accepted_reads()
    violations = system.check_consistency_window()
    config = system.config
    sections: list[str] = [f"# {title}", ""]

    # -- deployment ------------------------------------------------------
    spec = system.spec
    sections += [
        "## Deployment",
        "",
        _table(["masters", "slaves", "auditors", "clients", "seed",
                "max_latency", "p(double-check)", "read quorum",
                "audit fraction"],
               [(spec.num_masters,
                 spec.num_masters * spec.slaves_per_master,
                 spec.num_auditors, spec.num_clients, spec.seed,
                 config.max_latency, config.double_check_probability,
                 config.read_quorum, config.audit_fraction)]),
        "",
        f"Simulated time: **{system.now:.1f} s** — "
        f"{system.simulator.events_processed} events, "
        f"{system.network.messages_delivered} messages delivered, "
        f"{system.network.messages_dropped} dropped.",
        "",
    ]

    # -- traffic ---------------------------------------------------------
    latency = summarize(system.metrics.samples.get("read_latency", []))
    sections += [
        "## Traffic",
        "",
        _table(["reads accepted", "reads failed", "writes committed",
                "double-checks served", "sensitive reads"],
               [(c("reads_accepted"), c("reads_failed"),
                 c("writes_committed"), c("double_checks_served"),
                 c("sensitive_reads"))]),
        "",
    ]
    if latency["count"]:
        sections += [
            _table(["read latency", "mean", "p50", "p90", "p99", "max"],
                   [("seconds", latency["mean"], latency["p50"],
                     latency["p90"], latency["p99"], latency["max"])]),
            "",
        ]

    # -- defence -----------------------------------------------------------
    sections += [
        "## Defence",
        "",
        _table(["lies served", "caught red-handed", "caught by audit",
                "slaves excluded", "clients reassigned", "reads tainted"],
               [(c("slave_lies_served"), c("immediate_detections"),
                 sum(a.detections for a in system.auditors),
                 c("exclusions"), c("clients_reassigned"),
                 c("reads_tainted"))]),
        "",
    ]

    # -- audit ---------------------------------------------------------------
    received = sum(a.pledges_received for a in system.auditors)
    audited = sum(a.pledges_audited for a in system.auditors)
    skipped = sum(a.pledges_skipped for a in system.auditors)
    sections += [
        "## Audit",
        "",
        _table(["auditors", "pledges received", "audited", "skipped",
                "coverage", "cache hit rate"],
               [(len(system.auditors), received, audited, skipped,
                 f"{audited / received:.1%}" if received else "n/a",
                 f"{system.auditor.cache_hit_rate():.2f}")]),
        "",
    ]
    backlog = system.metrics.timelines.get("auditor_backlog_seconds")
    if backlog is not None and backlog.points and (backlog.max() or 0) > 0:
        sections += [
            f"Audit backlog over time (peak "
            f"{backlog.max():.2f} s of work):",
            "",
            "```",
            backlog.sparkline(width=72),
            "```",
            "",
        ]

    # -- verdict ------------------------------------------------------------
    wrong = classification["accepted_wrong"]
    detections = sum(a.detections for a in system.auditors)
    sections += [
        "## Verdict",
        "",
        _table(["accepted total", "accepted wrong",
                "wrong known to audit", "window violations"],
               [(classification["accepted_total"], wrong,
                 min(wrong, detections), len(violations))]),
        "",
    ]
    if violations:
        sections += ["**CONSISTENCY VIOLATIONS:**", ""]
        sections.append(_table(
            ["client", "request", "version", "accepted at",
             "next commit at"],
            [(v["client"], v["request_id"], v["version"],
              v["accepted_at"], v["next_commit_at"])
             for v in violations]))
        sections.append("")
    healthy = (len(violations) == 0 and detections >= wrong)
    sections.append(
        "**Run verdict: "
        + ("SAFE — the accountability guarantee held.**" if healthy
           else "UNSAFE — see violations above.**"))
    sections.append("")
    return "\n".join(sections)

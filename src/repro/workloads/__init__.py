"""Workload generators for the experiment harness.

The paper constrains its applicability to workloads where "the number of
reads is at least an order of magnitude larger than the number of writes"
(Section 2) and observes that "read requests show daily peak patterns"
(Section 3.4).  These generators produce exactly those shapes:

* :class:`~repro.workloads.generators.ReadWriteMix` -- Bernoulli read/write
  mix over a key population with optional Zipf skew;
* :class:`~repro.workloads.generators.ZipfKeys` -- skewed key popularity,
  feeding the auditor-cache ablation (A3);
* :class:`~repro.workloads.arrivals.PoissonArrivals` /
  :class:`~repro.workloads.arrivals.DiurnalArrivals` -- request arrival
  processes, the latter a sinusoidal day/night pattern for the audit-lag
  experiment (E5);
* :func:`~repro.workloads.generators.catalog_dataset`,
  :func:`~repro.workloads.generators.filesystem_dataset`,
  :func:`~repro.workloads.generators.publications_dataset` -- seed data for
  the three content engines, matching the paper's motivating examples.
"""

from repro.workloads.arrivals import DiurnalArrivals, PoissonArrivals
from repro.workloads.generators import (
    ReadWriteMix,
    ZipfKeys,
    catalog_dataset,
    filesystem_dataset,
    publications_dataset,
)

__all__ = [
    "PoissonArrivals",
    "DiurnalArrivals",
    "ReadWriteMix",
    "ZipfKeys",
    "catalog_dataset",
    "filesystem_dataset",
    "publications_dataset",
]

"""Operation-stream and seed-dataset generators.

The datasets line up with the paper's motivating content types:

* ``catalog_dataset`` -- an e-commerce product catalogue for the KV store
  ("product catalogues for e-commerce", Section 6);
* ``filesystem_dataset`` -- a source-tree-like file system exercising
  ``read``/``grep`` (Section 2's examples);
* ``publications_dataset`` -- an academic publications database for MiniDB
  ("academic, medical and legal databases", Section 6).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.content.kvstore import (
    KVAggregate,
    KVGet,
    KVPut,
    KVRange,
)
from repro.content.minidb import DBCreateTable, DBInsert
from repro.content.queries import Operation


class ZipfKeys:
    """Zipf-distributed key popularity over ``key_{0..n-1}``.

    Uses the classic inverse-rank weights ``1/rank^s``; sampling is by
    bisection over the cumulative weights, O(log n) per draw.
    """

    def __init__(self, num_keys: int, skew: float = 1.0,
                 prefix: str = "key") -> None:
        if num_keys <= 0:
            raise ValueError(f"need at least one key, got {num_keys}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.num_keys = num_keys
        self.skew = skew
        self.prefix = prefix
        weights = [1.0 / (rank ** skew) for rank in range(1, num_keys + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        self._cumulative = cumulative

    def key_name(self, index: int) -> str:
        return f"{self.prefix}_{index:06d}"

    def sample(self, rng: random.Random) -> str:
        """Draw one key, rank 0 being the most popular."""
        import bisect

        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, self.num_keys - 1)
        return self.key_name(index)

    def all_keys(self) -> list[str]:
        return [self.key_name(i) for i in range(self.num_keys)]


class ReadWriteMix:
    """Bernoulli mix of KV reads and writes over a Zipf key population.

    ``read_fraction`` defaults to 0.95 -- reads "at least an order of
    magnitude" above writes, per Section 2.  Reads are a blend of point
    gets, ranges and aggregates so that both cheap and expensive queries
    flow through the system.
    """

    def __init__(self, keys: ZipfKeys, read_fraction: float = 0.95,
                 range_fraction: float = 0.05,
                 aggregate_fraction: float = 0.05) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(
                f"read fraction must be in [0, 1], got {read_fraction}")
        if range_fraction + aggregate_fraction > 1.0:
            raise ValueError("range + aggregate fractions exceed 1")
        self.keys = keys
        self.read_fraction = read_fraction
        self.range_fraction = range_fraction
        self.aggregate_fraction = aggregate_fraction

    def operations(self, count: int, rng: random.Random) -> Iterator[Operation]:
        """Yield ``count`` operations."""
        for index in range(count):
            if rng.random() < self.read_fraction:
                yield self._read(rng)
            else:
                yield KVPut(key=self.keys.sample(rng),
                            value=f"v{index}")

    def _read(self, rng: random.Random) -> Operation:
        roll = rng.random()
        if roll < self.range_fraction:
            start_index = rng.randrange(self.keys.num_keys)
            start = self.keys.key_name(start_index)
            end = self.keys.key_name(
                min(start_index + 50, self.keys.num_keys - 1))
            return KVRange(start=start, end=end, limit=50)
        if roll < self.range_fraction + self.aggregate_fraction:
            return KVAggregate(prefix=self.keys.prefix, func="count")
        return KVGet(key=self.keys.sample(rng))


_CATEGORIES = ("books", "music", "garden", "tools", "toys", "sports")

_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango",
)


def catalog_dataset(num_products: int, rng: random.Random) -> dict[str, object]:
    """Product-catalogue items for a :class:`KeyValueStore`.

    Keys are ``catalog/<category>/<sku>``; values are plain dicts with a
    name, price and stock level.  Prices live under a separate
    ``price/<sku>`` numeric key so KV aggregates have numbers to fold.
    """
    items: dict[str, object] = {}
    for index in range(num_products):
        category = _CATEGORIES[index % len(_CATEGORIES)]
        sku = f"sku{index:06d}"
        price = round(rng.uniform(1.0, 500.0), 2)
        items[f"catalog/{category}/{sku}"] = {
            "name": f"{rng.choice(_WORDS)}-{rng.choice(_WORDS)}",
            "price": price,
            "stock": rng.randrange(0, 1000),
        }
        items[f"price/{sku}"] = price
    return items


def filesystem_dataset(num_files: int, rng: random.Random,
                       lines_per_file: int = 20) -> dict[str, str]:
    """Source-tree-like files with greppable content."""
    files: dict[str, str] = {}
    for index in range(num_files):
        directory = f"/src/{_WORDS[index % len(_WORDS)]}"
        lines = []
        for line_number in range(lines_per_file):
            words = " ".join(rng.choice(_WORDS) for _ in range(6))
            marker = "TODO" if rng.random() < 0.1 else "note"
            lines.append(f"{marker} {line_number}: {words}")
        files[f"{directory}/file{index:05d}.txt"] = "\n".join(lines)
    return files


def publications_dataset(num_papers: int,
                         rng: random.Random) -> list[Operation]:
    """Write operations seeding an academic-publications MiniDB.

    Two tables: ``papers(id, title, year, venue, author_id)`` and
    ``authors(id, name, institution)`` -- enough for the join/aggregate
    queries the benchmarks run.
    """
    num_authors = max(1, num_papers // 4)
    ops: list[Operation] = [
        DBCreateTable(table="authors",
                      columns=("id", "name", "institution")),
        DBCreateTable(table="papers",
                      columns=("id", "title", "year", "venue", "author_id")),
    ]
    authors = [
        {"id": i,
         "name": f"{rng.choice(_WORDS)} {rng.choice(_WORDS)}",
         "institution": f"univ-{i % 10}"}
        for i in range(num_authors)
    ]
    papers = [
        {"id": i,
         "title": " ".join(rng.choice(_WORDS) for _ in range(4)),
         "year": rng.randrange(1995, 2004),
         "venue": rng.choice(("hotos", "sosp", "osdi", "usenix")),
         "author_id": rng.randrange(num_authors)}
        for i in range(num_papers)
    ]
    ops.append(DBInsert.from_dicts("authors", authors))
    ops.append(DBInsert.from_dicts("papers", papers))
    return ops

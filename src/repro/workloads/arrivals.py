"""Request arrival processes.

Both generators yield absolute arrival times and are driven by a supplied
``random.Random``, keeping whole-system runs reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Iterator


class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def times(self, start: float, end: float,
              rng: random.Random) -> Iterator[float]:
        """Yield arrival times in [start, end)."""
        t = start
        while True:
            t += rng.expovariate(self.rate)
            if t >= end:
                return
            yield t


class DiurnalArrivals:
    """Sinusoidal day/night arrival pattern (Section 3.4's "daily peaks").

    Instantaneous rate::

        rate(t) = base_rate * (1 + amplitude * sin(2*pi*(t - phase)/period))

    with ``0 <= amplitude <= 1`` so the rate never goes negative.  Sampling
    uses Lewis-Shedler thinning against the peak rate, which is exact for
    any bounded rate function.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.8,
                 period: float = 86_400.0, phase: float = 0.0) -> None:
        if base_rate <= 0:
            raise ValueError(f"base rate must be positive, got {base_rate}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1], got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        angle = 2.0 * math.pi * (t - self.phase) / self.period
        return self.base_rate * (1.0 + self.amplitude * math.sin(angle))

    def times(self, start: float, end: float,
              rng: random.Random) -> Iterator[float]:
        """Yield arrival times in [start, end) via thinning."""
        peak = self.base_rate * (1.0 + self.amplitude)
        t = start
        while True:
            t += rng.expovariate(peak)
            if t >= end:
                return
            if rng.random() * peak <= self.rate_at(t):
                yield t

"""State-machine-replication baseline: quorum reads over untrusted hosts.

Section 5: "With state machine replication [16], the idea is to execute
the same operation on a number of untrusted hosts (quorum), and accept
the result only when a majority of these hosts agree upon it ... The
problem with this approach is that it greatly increases the amount of
computing resources needed for handling a given request.  Additionally,
the request latency is dictated by the slowest server in the quorum
group."

The model follows the PBFT [4] read/execute shape without re-implementing
view changes (writes here are ordered by construction, since E8 compares
steady-state costs, not leader churn):

* a group of ``n = 3f + 1`` untrusted replicas, of which up to
  ``num_byzantine`` lie (colluding: identical wrong answers);
* a read goes to ``2f + 1`` replicas; each executes it and signs its
  reply; the client accepts a result vouched for by ``f + 1`` matching
  replies -- so wrong results require ``f + 1`` colluders;
* a write is executed by all ``n`` replicas (3-phase agreement charged as
  ``2 * n`` protocol messages per write, the PBFT steady-state shape);
* per-operation latency is the *maximum* of the contacted replicas'
  sampled delays (the slowest-server effect the paper highlights).
"""

from __future__ import annotations

import random
from typing import Any

from repro.baselines.costs import CostLedger
from repro.content.queries import ReadQuery, WriteOp
from repro.content.store import ContentStore
from repro.crypto.hashing import constant_time_equals, sha1_hex
from repro.sim.latency import LatencyModel, LogNormalLatency


class QuorumReplicaGroup:
    """``3f + 1`` replicas, the first ``num_byzantine`` of them colluding."""

    def __init__(self, store: ContentStore, f: int,
                 num_byzantine: int = 0,
                 latency: LatencyModel | None = None,
                 seed: int = 0,
                 service_time_per_unit: float = 1e-4) -> None:
        if f < 0:
            raise ValueError(f"f must be non-negative, got {f}")
        self.f = f
        self.n = 3 * f + 1
        if not 0 <= num_byzantine <= self.n:
            raise ValueError(
                f"num_byzantine must be in [0, {self.n}], "
                f"got {num_byzantine}")
        self.num_byzantine = num_byzantine
        self.replicas = [store.clone() for _ in range(self.n)]
        self.latency = latency or LogNormalLatency(median=0.05, sigma=0.5)
        self.rng = random.Random(f"smr/{seed}")
        self.service_time_per_unit = service_time_per_unit
        self.ledger = CostLedger()

    def read_quorum_size(self) -> int:
        return 2 * self.f + 1

    def execute_read(self, query: ReadQuery) -> dict[str, Any]:
        """Run one quorum read; returns result, correctness and latency."""
        quorum = self.read_quorum_size()
        self.ledger.operations += 1
        replies: list[str] = []
        results: dict[str, Any] = {}
        slowest = 0.0
        for index in range(quorum):
            outcome = self.replicas[index].execute_read(query)
            self.ledger.untrusted_compute_units += outcome.cost_units
            # Every reply is signed by its replica and verified at the
            # client (PBFT uses MACs/signatures on replies).
            self.ledger.signatures += 1
            self.ledger.verifications += 1
            self.ledger.hashes += 1
            self.ledger.messages += 2
            if index < self.num_byzantine:
                result: Any = {"forged": True,
                               "tag": query.request_hash()[:8]}
            else:
                result = outcome.result
            digest = sha1_hex(result)
            replies.append(digest)
            results[digest] = result
            delay = (self.latency.sample("client", f"replica-{index}",
                                         self.rng)
                     + outcome.cost_units * self.service_time_per_unit)
            slowest = max(slowest, delay)
        # Accept the first digest with f+1 matching votes.
        accepted = None
        for digest in replies:
            if replies.count(digest) >= self.f + 1:
                accepted = digest
                break
        self.ledger.latencies.append(2 * slowest)  # request + reply legs
        if accepted is None:
            self.ledger.rejected += 1
            return {"result": None, "accepted": False, "latency": 2 * slowest}
        honest_digest = sha1_hex(
            self.replicas[self.n - 1].execute_read(query).result)
        return {
            "result": results[accepted],
            "accepted": True,
            "correct": constant_time_equals(accepted, honest_digest),
            "latency": 2 * slowest,
        }

    def execute_write(self, op: WriteOp) -> dict[str, Any]:
        """Run one agreed write on every replica (PBFT steady state)."""
        self.ledger.operations += 1
        slowest = 0.0
        for index, replica in enumerate(self.replicas):
            outcome = replica.apply_write(op)
            self.ledger.untrusted_compute_units += outcome.cost_units
            delay = self.latency.sample("primary", f"replica-{index}",
                                        self.rng)
            slowest = max(slowest, delay)
        # Pre-prepare/prepare/commit message complexity: O(n^2) in PBFT;
        # charge the dominant 2n^2 inter-replica messages plus client I/O.
        self.ledger.messages += 2 * self.n * self.n + 2
        self.ledger.signatures += self.n
        self.ledger.verifications += self.n * self.n
        self.ledger.latencies.append(3 * slowest)  # three protocol phases
        return {"accepted": True, "latency": 3 * slowest}


class QuorumClient:
    """Thin client wrapper mirroring the other baselines' API."""

    def __init__(self, group: QuorumReplicaGroup) -> None:
        self.group = group
        self.ledger = CostLedger()

    def read(self, query: ReadQuery) -> dict[str, Any]:
        self.ledger.operations += 1
        outcome = self.group.execute_read(query)
        # The client verifies 2f+1 signed replies.
        self.ledger.verifications += self.group.read_quorum_size()
        return outcome

    def write(self, op: WriteOp) -> dict[str, Any]:
        self.ledger.operations += 1
        return self.group.execute_write(op)

"""The two comparison systems from Section 5.

Both baselines expose the same workload-facing API (execute reads/writes,
account costs in a :class:`~repro.baselines.costs.CostLedger`) so that
experiment E8 can run one workload through all three systems -- ours, the
state-signing design and quorum state-machine replication -- and compare
per-read compute, signatures, message counts, latency and supported-query
coverage.

* :mod:`repro.baselines.state_signing` -- hash-tree authenticated storage
  ([7]/[11]/[12]-style): untrusted replicas serve items with Merkle
  proofs under a content-key-signed root.  Dynamic queries cannot be
  verified this way and fall back to a trusted host that must fetch and
  verify every relevant item first (the limitation Section 5 calls out).
* :mod:`repro.baselines.state_machine` -- PBFT-style replication [4]:
  every read is executed by a full quorum of untrusted replicas and the
  client accepts the majority answer; wrong results require collusion but
  every request costs quorum-many executions (the overhead Section 5
  calls out).
"""

from repro.baselines.costs import CostLedger
from repro.baselines.state_signing import (
    StateSigningClient,
    StateSigningPublisher,
    StateSigningStorage,
)
from repro.baselines.state_machine import QuorumClient, QuorumReplicaGroup

__all__ = [
    "CostLedger",
    "StateSigningPublisher",
    "StateSigningStorage",
    "StateSigningClient",
    "QuorumReplicaGroup",
    "QuorumClient",
]

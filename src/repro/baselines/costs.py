"""Shared cost vocabulary for cross-system comparison (experiment E8).

Costs are counted in the same units the core system's simulation uses:

* *compute units* -- content-store work (1 unit ~ one row/key touched),
  split by whether a trusted or an untrusted machine performed it,
  because the paper's whole point is shifting compute onto untrusted
  hardware ("these resources need not be trusted, and may therefore be
  easier to come by", Section 4);
* *signatures / verifications / hashes* -- public-key and digest
  operations, the dominant fixed per-request crypto costs;
* *messages* -- WAN round trips.

``latency_estimate`` converts a ledger into seconds using the same
service-time constants as :class:`repro.core.config.ProtocolConfig`, so
the three systems are scored by one ruler.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostLedger:
    """Accumulated resource usage for a batch of operations."""

    trusted_compute_units: float = 0.0
    untrusted_compute_units: float = 0.0
    client_compute_units: float = 0.0
    signatures: int = 0
    verifications: int = 0
    hashes: int = 0
    messages: int = 0
    operations: int = 0
    rejected: int = 0
    unsupported: int = 0
    #: Latency samples, one per operation (seconds).
    latencies: list[float] = field(default_factory=list)

    def merge(self, other: "CostLedger") -> None:
        self.trusted_compute_units += other.trusted_compute_units
        self.untrusted_compute_units += other.untrusted_compute_units
        self.client_compute_units += other.client_compute_units
        self.signatures += other.signatures
        self.verifications += other.verifications
        self.hashes += other.hashes
        self.messages += other.messages
        self.operations += other.operations
        self.rejected += other.rejected
        self.unsupported += other.unsupported
        self.latencies.extend(other.latencies)

    def per_operation(self) -> dict[str, float]:
        """Averages per operation, the row format E8 prints."""
        n = max(1, self.operations)
        return {
            "trusted_units": self.trusted_compute_units / n,
            "untrusted_units": self.untrusted_compute_units / n,
            "signatures": self.signatures / n,
            "verifications": self.verifications / n,
            "hashes": self.hashes / n,
            "messages": self.messages / n,
            "mean_latency": (sum(self.latencies) / len(self.latencies)
                             if self.latencies else 0.0),
        }

"""State-signing baseline: Merkle-authenticated untrusted storage.

Section 5: "With state signing, the data content is divided into small
(disjunct) subsets which are signed with a content private key.  Clients
then retrieve data from untrusted storage and verify its integrity using
the content public key ... some form of hash-tree authentication [12] is
normally used."

The model has three principals:

* :class:`StateSigningPublisher` (trusted, offline for reads): maintains
  the Merkle tree over the key-value content, signs ``(root, version)``
  after every write, pushes the update to storage replicas.
* :class:`StateSigningStorage` (untrusted): serves ``(value, proof,
  signed root)`` for point lookups.  A Byzantine replica can substitute
  values, but any substitution fails proof verification at the client --
  the strength of this design.
* :class:`StateSigningClient`: verifies proofs against the signed root.

Its structural weakness -- "the main limitation ... is that dynamic
queries on the data need to be executed on trusted hosts.  This requires
the trusted host to first retrieve all data relevant to the query from
untrusted storage, verify it, and then perform the operation" -- is
modelled literally: any non-point query is routed to the publisher, which
charges itself a fetch + per-item proof verification for every key the
query touches, then executes the query.  E8 shows this is where state
signing loses to the paper's design on read-mostly dynamic workloads.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any

from repro.baselines.costs import CostLedger
from repro.content.filesystem import FSRead, MemoryFileSystem
from repro.content.kvstore import KVGet, KeyValueStore
from repro.content.queries import ReadQuery, WriteOp
from repro.content.store import ContentStore
from repro.crypto.hashing import canonical_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.signatures import PublicKey, Signature, new_signer


def point_key_of(query: ReadQuery) -> str | None:
    """The authenticated-dictionary key a query addresses, if any.

    Point lookups are what hash-tree authentication can serve from
    untrusted storage: ``KVGet`` keys and ``FSRead`` paths ("read
    FileName" -- the paper's own example of content state-signing systems
    handle).  Everything else (ranges, aggregates, ``grep``, joins) is a
    dynamic query and returns None.
    """
    if isinstance(query, KVGet):
        return query.key
    if isinstance(query, FSRead):
        from repro.content.filesystem import _normalise

        try:
            return _normalise(query.path)
        except ValueError:
            return query.path
    return None


def leaf_items_of(store: ContentStore) -> dict[str, object]:
    """The (key -> value) dictionary a store authenticates over.

    Supported: :class:`KeyValueStore` (keys are leaves) and
    :class:`MemoryFileSystem` (file paths are leaves).  Relational
    content has no natural disjoint-leaf decomposition that supports its
    query model -- which is precisely the paper's argument for why state
    signing "can only support semi-static data content and restrictive,
    pre-defined types of queries".
    """
    if isinstance(store, MemoryFileSystem):
        return dict(store.state_items()["files"])
    if isinstance(store, KeyValueStore):
        return dict(store.state_items())
    raise TypeError(
        f"state signing cannot authenticate {type(store).__name__}")


@dataclass(frozen=True)
class SignedRoot:
    """The publisher's signature over (root, version)."""

    root: bytes
    version: int
    signature: Signature

    @staticmethod
    def payload(root: bytes, version: int) -> bytes:
        return canonical_bytes({"kind": "merkle_root", "root": root,
                                "version": version})


@dataclass(frozen=True)
class AuthenticatedItem:
    """What untrusted storage returns for a point lookup."""

    found: bool
    proof: MerkleProof | None
    signed_root: SignedRoot


class StateSigningPublisher:
    """Trusted publisher holding the content key and the Merkle tree.

    ``content`` is either a plain ``{key: value}`` dict (authenticated as
    a key-value catalogue) or any :class:`ContentStore` whose state maps
    to an authenticated dictionary via :func:`leaf_items_of` -- in
    particular :class:`MemoryFileSystem`, matching the systems the paper
    cites ([7], [11]: read-only / Byzantine-storage file systems).
    """

    def __init__(self, content: "dict[str, Any] | ContentStore",
                 rng: random.Random | None = None,
                 signer_scheme: str = "hmac") -> None:
        self.keys = KeyPair("publisher", new_signer(signer_scheme, rng=rng))
        if isinstance(content, dict):
            # The publisher keeps a real store so it can execute the
            # dynamic queries untrusted storage cannot serve verifiably.
            self.store: ContentStore = KeyValueStore(content)
        else:
            self.store = content
        self.tree = MerkleTree(leaf_items_of(self.store).items())
        self.version = 0
        self.ledger = CostLedger()
        self._signed_root = self._sign_root()

    def _sign_root(self) -> SignedRoot:
        self.ledger.signatures += 1
        root = self.tree.root
        return SignedRoot(root=root, version=self.version,
                          signature=self.keys.sign(
                              SignedRoot.payload(root, self.version)))

    @property
    def signed_root(self) -> SignedRoot:
        return self._signed_root

    def apply_write(self, op: WriteOp) -> None:
        """Apply a write, rebuild affected hashes, re-sign the root.

        The tree is rebuilt from the store's leaf map; the *cost model*
        charges the log2(n) path hashes an incremental implementation
        pays, which is what the E8 accounting uses.
        """
        outcome = self.store.apply_write(op)
        self.ledger.trusted_compute_units += outcome.cost_units
        self.tree = MerkleTree(leaf_items_of(self.store).items())
        # Path recomputation: log2(n) node hashes.
        self.ledger.hashes += max(1, int(math.log2(max(2, len(self.tree)))))
        self.version += 1
        self._signed_root = self._sign_root()
        self.ledger.operations += 1

    def execute_dynamic_read(self, query: ReadQuery,
                             storage: "StateSigningStorage") -> Any:
        """The Section 5 fallback: fetch + verify + execute on trust.

        The publisher (or any trusted host) pulls every key the query may
        touch from untrusted storage, verifies each proof, then runs the
        query locally.  Charged: one fetch message + one proof
        verification per key, plus the query execution itself.
        """
        keys = storage.tree.keys()
        verify_hashes_per_item = max(
            1, int(math.log2(max(2, len(keys)))))
        for key in keys:
            item = storage.serve_point(key)
            self.ledger.messages += 2  # request + response
            self.ledger.hashes += verify_hashes_per_item
            self.ledger.verifications += 1
            if item.proof is None or not item.proof.verify(
                    item.signed_root.root):
                # Tampering detected; in a real deployment the trusted
                # host would re-fetch from another replica.  The publisher
                # holds authoritative state, so just count the rejection.
                self.ledger.rejected += 1
        outcome = self.store.execute_read(query)
        self.ledger.trusted_compute_units += outcome.cost_units
        self.ledger.operations += 1
        return outcome.result


class StateSigningStorage:
    """One untrusted storage replica.

    ``tamper_keys`` simulates a Byzantine replica substituting values for
    chosen keys -- demonstrating (in tests) that clients reject them.
    """

    def __init__(self, publisher: StateSigningPublisher,
                 tamper_keys: dict[str, Any] | None = None) -> None:
        self.tree = MerkleTree(leaf_items_of(publisher.store).items())
        self.signed_root = publisher.signed_root
        self.tamper_keys = dict(tamper_keys or {})
        self.ledger = CostLedger()

    def receive_update(self, publisher: StateSigningPublisher) -> None:
        """Pull the publisher's new state and signed root (push model)."""
        self.tree = MerkleTree(leaf_items_of(publisher.store).items())
        self.signed_root = publisher.signed_root
        self.ledger.messages += 1

    def serve_point(self, key: str) -> AuthenticatedItem:
        """Serve one key with its membership proof."""
        self.ledger.untrusted_compute_units += 1.0
        self.ledger.messages += 1
        if key not in self.tree:
            return AuthenticatedItem(found=False, proof=None,
                                     signed_root=self.signed_root)
        proof = self.tree.prove(key)
        self.ledger.hashes += len(proof.siblings)
        if key in self.tamper_keys:
            # A malicious replica substitutes the value but cannot forge
            # the sibling hashes to match: verification will fail.
            proof = MerkleProof(key=proof.key,
                                value=self.tamper_keys[key],
                                index=proof.index,
                                siblings=proof.siblings,
                                leaf_count=proof.leaf_count)
        return AuthenticatedItem(found=True, proof=proof,
                                 signed_root=self.signed_root)


class StateSigningClient:
    """Client verifying authenticated point reads."""

    def __init__(self, publisher_public_key: PublicKey,
                 rng: random.Random | None = None) -> None:
        self.keys = KeyPair("ss-client", new_signer("hmac", rng=rng))
        self.publisher_public_key = publisher_public_key
        self.ledger = CostLedger()

    def read(self, query: ReadQuery, storage: StateSigningStorage,
             publisher: StateSigningPublisher) -> dict[str, Any]:
        """Execute a read; point gets go to storage, the rest to trust.

        Returns ``{"result", "verified", "path"}`` where path is
        ``"storage"`` or ``"trusted"``.
        """
        self.ledger.operations += 1
        point_key = point_key_of(query)
        if point_key is not None:
            item = storage.serve_point(point_key)
            self.ledger.messages += 2
            # Verify the signed root, then the membership proof.
            self.ledger.verifications += 1
            root_ok = self.keys.verify(
                self.publisher_public_key,
                SignedRoot.payload(item.signed_root.root,
                                   item.signed_root.version),
                item.signed_root.signature)
            if not root_ok:
                self.ledger.rejected += 1
                return {"result": None, "verified": False, "path": "storage"}
            if not item.found:
                # Absence cannot be proven by this simple tree; accept the
                # storage's word only for the benchmarks' purposes and
                # count it as unverified-notfound.
                return {"result": _shape_result(query, False, None),
                        "verified": False, "path": "storage"}
            assert item.proof is not None
            self.ledger.hashes += len(item.proof.siblings) + 1
            if not item.proof.verify(item.signed_root.root):
                self.ledger.rejected += 1
                return {"result": None, "verified": False, "path": "storage"}
            return {"result": _shape_result(query, True, item.proof.value),
                    "verified": True, "path": "storage"}
        # Dynamic query: the Section 5 fallback to a trusted host.
        self.ledger.unsupported += 1
        result = publisher.execute_dynamic_read(query, storage)
        return {"result": result, "verified": True, "path": "trusted"}


def _shape_result(query: ReadQuery, found: bool, value: Any) -> dict:
    """Present an authenticated point value in the engine's result shape."""
    if isinstance(query, FSRead):
        return {"found": found, "content": value}
    return {"found": found, "value": value}

"""Named chaos scenarios: fault schedules with machine-checked verdicts.

Each scenario boots a :class:`~repro.chaos.cluster.ChaosCluster`, runs a
live read/write workload while a scripted fault schedule plays out, and
returns a :class:`ScenarioVerdict`: named checks (the paper's safety and
liveness obligations), measured timings (detection latency, recovery,
read-unavailability) and the relevant counters -- JSON-shaped so
``repro-sim chaos`` can print them and CI can assert on them.

The catalog covers the corrective-action matrix of Section 3.5 over
real sockets:

* ``master_crash``    -- crash a master mid-workload: survivors detect it
  within the keep-alive bound, divide its slave set, its clients
  re-home to live masters, and a restart rejoins and catches up;
* ``partition_heal``  -- partition a master into a minority while lying
  slaves are being caught on the majority side: accusations and
  exclusions propagate to the partitioned master after healing;
* ``corrupt_frames``  -- random byte corruption on every client<->slave
  link: forged bytes never become accepted reads;
* ``auditor_failover``-- crash an auditor: masters fail its clients over
  to a survivor and pledges keep flowing; a restart rejoins;
* ``slave_crash``     -- crash and restart a serving slave: clients ride
  through on retries, the slave resyncs on rejoin;
* ``flash_crowd``     -- a greedy-client burst hammers the serving plane
  while honest readers continue: with wire-level admission control
  (``repro.qos``) honest read p99 stays within a baseline-derived SLO,
  keep-alives never miss their freshness window, and every shed frame
  is attributed in the metrics;
* ``shard_rebalance`` -- move a shard between master groups under live
  router traffic (``repro.shard``): clients re-home through WrongShard
  redirects within the detection bound, the read-unavailability window
  stays bounded, the other shard never blips, and the per-shard safety
  oracle finds zero violations.

Every random decision (workload and faults) comes from seeded streams,
so a verdict is reproducible for a given ``(scenario, seed)`` up to
real-clock timing.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.chaos.cluster import ChaosCluster, launch_chaos
from repro.chaos.faults import LinkFaults
from repro.chaos.invariants import (
    CheckResult,
    reference_master,
    run_safety_checks,
)
from repro.content.kvstore import KVGet, KVPut
from repro.content.queries import Operation
from repro.core.adversary import AlwaysLie
from repro.core.client import Client
from repro.crypto.hashing import sha1_hex
from repro.net.deploy import NetDeploymentSpec, fast_protocol_config
from repro.obs.spans import Span
from repro.shard.deploy import (
    ShardDeploymentSpec,
    ShardedCluster,
    run_shard_safety_checks,
)
from repro.shard.rebalance import Rebalancer

#: Detection bound as a multiple of ``keepalive_interval``: the
#: broadcast layer suspects a silent member after
#: ``broadcast_suspect_after`` (six keep-alive intervals in the chaos
#: configs below) plus a couple of heartbeat periods of slack.
K_DETECT = 10


@dataclass
class ScenarioVerdict:
    """The JSON-shaped outcome of one scenario run."""

    scenario: str
    seed: int
    passed: bool
    checks: list[CheckResult] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "passed": self.passed,
            "checks": [check.to_json() for check in self.checks],
            "timings": self.timings,
            "counters": self.counters,
        }

    def failures(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.passed]


class ReadLoad:
    """Continuous background reads, one task per client.

    Accept timestamps are kept so scenarios can measure the
    read-unavailability window around a fault (the longest gap between
    accepted reads while the schedule played out).
    """

    def __init__(self, cluster: ChaosCluster, query: Operation,
                 interval: float = 0.04, timeout: float = 8.0,
                 clients: "list[Any] | None" = None) -> None:
        self.cluster = cluster
        self.query = query
        self.interval = interval
        self.timeout = timeout
        #: Which operation sinks drive load (default: every client);
        #: overload scenarios restrict this to the honest subset, and
        #: sharded scenarios pass routers instead of clients.
        self.clients: list[Any] = clients if clients is not None \
            else list(cluster.clients)
        self.accepted = 0
        self.rejected = 0
        self.timeouts = 0
        self.accepted_at: list[float] = []
        self._tasks: list["asyncio.Task[None]"] = []

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._run_one(client),
                             name=f"chaos-load:{client.node_id}")
            for client in self.clients
        ]

    async def _run_one(self, client: Any) -> None:
        try:
            while True:
                try:
                    reply = await self.cluster.read(
                        client, self.query, timeout=self.timeout)
                except (TimeoutError, asyncio.TimeoutError):
                    self.timeouts += 1
                else:
                    if reply.get("status") == "accepted":
                        self.accepted += 1
                        self.accepted_at.append(self.cluster.scheduler.now)
                    else:
                        self.rejected += 1
                await asyncio.sleep(self.interval)
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        # Take the task list before awaiting so a concurrent stop()
        # cannot re-cancel or re-await half-drained tasks.
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass

    def max_gap(self, start: float, end: float) -> float:
        """Longest stretch inside [start, end] with no accepted read."""
        stamps = sorted(t for t in self.accepted_at if start <= t <= end)
        edges = [start, *stamps, end]
        return max(b - a for a, b in zip(edges, edges[1:]))


class FlashCrowd:
    """A closed-loop greedy read storm: the ``flash_crowd`` load shape.

    Each greedy client runs ``concurrency`` concurrent read tasks in a
    tight loop (no think time), so the in-flight operation count stays
    pinned at ``len(clients) * concurrency`` for the whole burst --
    enough sustained pressure to saturate the serving plane, unlike an
    open-loop flood that TCP backpressure would self-limit.
    """

    def __init__(self, cluster: ChaosCluster, clients: list[Client],
                 query: Operation, concurrency: int = 20,
                 timeout: float = 6.0) -> None:
        self.cluster = cluster
        self.clients = clients
        self.query = query
        self.concurrency = concurrency
        self.timeout = timeout
        self.attempts = 0
        self.completed = 0
        self._stopping = False
        self._tasks: list["asyncio.Task[None]"] = []

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._stopping = False
        self._tasks = [
            loop.create_task(
                self._hammer(client),
                name=f"chaos-crowd:{client.node_id}:{i}")
            for client in self.clients
            for i in range(self.concurrency)
        ]

    async def _hammer(self, client: Client) -> None:
        try:
            while not self._stopping:
                self.attempts += 1
                try:
                    await self.cluster.read(client, self.query,
                                            timeout=self.timeout)
                except (TimeoutError, asyncio.TimeoutError):
                    continue
                self.completed += 1
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        # wait_for can swallow a cancel that races a read timeout (the
        # 3.11 lost-cancellation window), and with this many tasks all
        # timing out under shed pressure that race does get hit.  The
        # _stopping flag guarantees a task whose cancel was eaten still
        # exits after its in-flight read, so cancel and wait in rounds
        # instead of awaiting each task exactly once.
        self._stopping = True
        tasks, self._tasks = self._tasks, []
        pending: "set[asyncio.Task[None]]" = set(tasks)
        while pending:
            for task in pending:
                task.cancel()
            done, pending = await asyncio.wait(pending, timeout=2.0)
            for task in done:
                if not task.cancelled():
                    task.exception()  # retrieve, tasks may have failed


def _preferred_master(client_id: str, num_masters: int) -> str:
    """The master a client deterministically homes to (client.py's rule)."""
    index = int(sha1_hex(client_id)[:4], 16) % num_masters
    return f"master-{index:02d}"


def _check(name: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(name=name, passed=passed, detail=detail)


_COUNTER_PREFIXES = ("chaos_", "net_drop_", "qos_", "router_", "shard_")
_COUNTER_NAMES = (
    "reads_accepted", "reads_failed", "writes_committed", "writes_failed",
    "exclusions", "slaves_adopted", "master_crash_noticed",
    "auditor_crash_noticed", "auditor_recovery_noticed",
    "clients_auditor_failover", "client_reassignments", "reads_tainted",
    "net_frames_rejected", "net_handler_errors", "net_frames_dropped",
    "net_timeouts", "immediate_detections", "client_rehomes",
)


def _verdict(cluster: ChaosCluster, name: str, seed: int,
             checks: list[CheckResult],
             timings: dict[str, float]) -> ScenarioVerdict:
    snapshot = cluster.metrics.snapshot()
    counters = {
        key: value for key, value in sorted(snapshot.items())
        if key in _COUNTER_NAMES or key.startswith(_COUNTER_PREFIXES)
    }
    return ScenarioVerdict(
        scenario=name, seed=seed,
        passed=all(check.passed for check in checks),
        checks=checks, timings={k: round(v, 4) for k, v in timings.items()},
        counters=counters)


async def _drain(cluster: ChaosCluster, extra: float = 0.3) -> None:
    """Let in-flight commits propagate and the audit queue clear."""
    await asyncio.sleep(cluster.config.max_latency
                        + cluster.config.audit_grace + extra)


def _spans(cluster: ChaosCluster) -> list[Span]:
    """Every span recorded so far (empty when tracing is off)."""
    if cluster.obs is None:
        return []
    return cluster.obs.collector.spans()


def _detections_since(cluster: ChaosCluster, t0: float) -> list[float]:
    timeline = cluster.metrics.timelines.get("master_crash_detections")
    if timeline is None:
        return []
    return [at for at, _value in timeline.points if at >= t0]


# -- scenario: master crash + restart (Section 3.5 end to end) -------------


async def master_crash(seed: int = 0) -> ScenarioVerdict:
    keepalive = 0.2
    config = fast_protocol_config(
        double_check_probability=0.0,
        keepalive_interval=keepalive,
        broadcast_heartbeat_interval=keepalive,
        broadcast_suspect_after=6 * keepalive,
        request_timeout=1.0,
        max_read_retries=3,
    )
    spec = NetDeploymentSpec(num_masters=3, slaves_per_master=2,
                             num_clients=4, seed=seed, protocol=config,
                             # Tracing on: the takeover must also be
                             # visible as a span (checked below).
                             obs_enabled=True)
    cluster = await launch_chaos(spec, settle=0.8)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    load = ReadLoad(cluster, KVGet(key="k"))
    victim = "master-01"  # a follower: the sequencer stays up
    try:
        write = await cluster.write(cluster.clients[0],
                                    KVPut(key="k", value="v0"))
        checks.append(_check("baseline_write", write["status"] == "committed",
                             f"pre-fault write: {write['status']}"))
        await asyncio.sleep(config.max_latency + keepalive)
        load.start()
        await asyncio.sleep(0.5)

        crash_t = cluster.scheduler.now
        stranded = [c for c in cluster.clients if c.master_id == victim]
        await cluster.crash_node(victim)

        # 1. Detection: survivors notice within K_DETECT keep-alives.
        bound = K_DETECT * keepalive
        try:
            await cluster.wait_for(
                lambda: bool(_detections_since(cluster, crash_t)),
                timeout=3 * bound, what="crash detection")
        except TimeoutError:
            pass
        detections = _detections_since(cluster, crash_t)
        latency = (detections[0] - crash_t) if detections else float("inf")
        timings["detection_latency"] = latency
        timings["detection_bound"] = bound
        checks.append(_check(
            "detection_within_bound", latency <= bound,
            f"first survivor acted {latency:.2f}s after the crash "
            f"(bound {bound:.2f}s = {K_DETECT} x keepalive)"))

        # 1b. Same bound, independently observed through repro.obs: a
        # survivor's ``master.takeover`` span must land within
        # K_DETECT keep-alives of the crash.
        takeovers = [s for s in _spans(cluster)
                     if s.op == "master.takeover" and s.start >= crash_t]
        span_latency = (min(s.start for s in takeovers) - crash_t
                        if takeovers else float("inf"))
        timings["takeover_span_latency"] = span_latency
        checks.append(_check(
            "takeover_span_within_bound", span_latency <= bound,
            f"{len(takeovers)} master.takeover span(s); first "
            f"{span_latency:.2f}s after the crash (bound {bound:.2f}s)"))

        # 2. Slave-set division: both orphaned slaves adopted.
        try:
            waited = await cluster.wait_for(
                lambda: cluster.metrics.count("slaves_adopted")
                >= spec.slaves_per_master,
                timeout=2 * bound, what="slave adoption")
            timings["slave_adoption"] = latency + waited
        except TimeoutError:
            pass
        adopted = cluster.metrics.count("slaves_adopted")
        checks.append(_check(
            "slave_set_divided", adopted >= spec.slaves_per_master,
            f"{adopted:.0f}/{spec.slaves_per_master} orphaned slaves "
            f"adopted by survivors"))

        # 3. Client reassignment: writes from the dead master's clients
        # time out and re-home them (Section 3.5's re-setup path).
        rehome_tasks = [
            asyncio.get_running_loop().create_task(
                cluster.write(client, KVPut(key=f"re{index}", value="x"),
                              timeout=14.0))
            for index, client in enumerate(stranded)
        ]
        try:
            await cluster.wait_for(
                lambda: all(c.ready and c.master_id is not None
                            and not cluster.node(c.master_id).crashed
                            for c in cluster.clients),
                timeout=12.0, what="client reassignment")
        except TimeoutError:
            pass
        finally:
            # The probe writes only exist to trigger re-homing; reap
            # them so no orphan task outlives the scenario.
            for task in rehome_tasks:
                task.cancel()
            for task in rehome_tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        still_stranded = [c.node_id for c in cluster.clients
                          if not c.ready or c.master_id == victim]
        checks.append(_check(
            "clients_reassigned", not still_stranded,
            f"{len(stranded)} clients were homed on {victim}; "
            f"still stranded: {still_stranded or 'none'}"))

        # 4. Liveness through the fault: a post-crash write commits.
        post = await cluster.write(cluster.clients[0],
                                   KVPut(key="k", value="v1"), timeout=14.0)
        checks.append(_check(
            "post_crash_write", post["status"] == "committed",
            f"write after the crash: {post['status']}"))

        # 5. Restart with rejoin: the master comes back on the same
        # endpoint, announces recovery and catches up the missed history.
        restart_t = cluster.scheduler.now
        await cluster.restart_node(victim)
        victim_master = next(m for m in cluster.masters
                             if m.node_id == victim)
        try:
            waited = await cluster.wait_for(
                lambda: victim_master.version
                == reference_master(cluster).version,
                timeout=10.0, what="restarted master catch-up")
            timings["rejoin_catchup"] = waited
        except TimeoutError:
            pass
        checks.append(_check(
            "restart_rejoined",
            victim_master.version == reference_master(cluster).version,
            f"{victim} at version {victim_master.version} vs reference "
            f"{reference_master(cluster).version} after restart"))

        await load.stop()
        timings["read_unavailability"] = load.max_gap(crash_t,
                                                      restart_t)
        checks.append(_check(
            "reads_survived", load.accepted > 0,
            f"{load.accepted} accepted, {load.timeouts} timed out, "
            f"{load.rejected} failed during the schedule"))
        await _drain(cluster)
        checks.extend(run_safety_checks(cluster))
        return _verdict(cluster, "master_crash", seed, checks, timings)
    finally:
        await load.stop()
        await cluster.aclose()


# -- scenario: partition + heal with lying slaves --------------------------


async def partition_heal(seed: int = 0) -> ScenarioVerdict:
    num_masters = 3
    liar_master = _preferred_master("client-00", num_masters)
    liar_index = int(liar_master[-2:])
    # Isolate a master that is not the liars' owner, so the Byzantine
    # detection runs on the majority side while the target sits out the
    # partition entirely (cut from every other trusted member, so the
    # exclusion broadcasts genuinely cannot reach it).
    candidates = [f"master-{i:02d}" for i in range(1, num_masters)
                  if f"master-{i:02d}" != liar_master]
    target = candidates[-1]
    config = fast_protocol_config(
        double_check_probability=0.05,
        request_timeout=1.0,
        max_read_retries=3,
    )
    spec = NetDeploymentSpec(
        num_masters=num_masters, slaves_per_master=2, num_clients=3,
        seed=seed, protocol=config,
        # Both of the liar master's slaves corrupt every answer...
        adversaries={2 * liar_index: AlwaysLie(),
                     2 * liar_index + 1: AlwaysLie()},
        # ...and every client double-checks every read, so the first lie
        # a client sees becomes an accusation immediately.
        client_double_check_overrides={i: 1.0 for i in range(3)})
    cluster = await launch_chaos(spec, settle=0.8)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    load = ReadLoad(cluster, KVGet(key="k"))
    try:
        write = await cluster.write(cluster.clients[0],
                                    KVPut(key="k", value="v0"))
        checks.append(_check("baseline_write", write["status"] == "committed",
                             f"pre-fault write: {write['status']}"))
        await asyncio.sleep(config.max_latency + config.keepalive_interval)

        partition_t = cluster.scheduler.now
        trusted = [m.node_id for m in cluster.masters] + \
            [a.node_id for a in cluster.auditors]
        for other in trusted:
            if other != target:
                cluster.partition(target, other)
        load.start()

        # While partitioned, the majority side must catch the liars and
        # exclude both of the liar master's slaves.
        try:
            waited = await cluster.wait_for(
                lambda: cluster.metrics.count("exclusions") >= 2,
                timeout=12.0, what="exclusion of both lying slaves")
            timings["exclusions_done"] = waited
        except TimeoutError:
            pass
        exclusions = cluster.metrics.count("exclusions")
        checks.append(_check(
            "liars_excluded_during_partition", exclusions >= 2,
            f"{exclusions:.0f} exclusions while {target} was partitioned"))

        # Commit on the majority side and hold the partition long past
        # the suspicion window, so the target provably misses history
        # (it goes leaderless in its minority and cannot order anything).
        mid = await cluster.write(cluster.clients[0],
                                  KVPut(key="k", value="mid"), timeout=14.0)
        checks.append(_check(
            "write_during_partition", mid["status"] == "committed",
            f"majority-side write while {target} was cut off: "
            f"{mid['status']}"))
        await asyncio.sleep(2 * config.broadcast_suspect_after)

        target_master = next(m for m in cluster.masters
                             if m.node_id == target)
        version_at_heal = target_master.version
        reference_at_heal = reference_master(cluster).version
        checks.append(_check(
            "target_missed_partition_history",
            version_at_heal < reference_at_heal,
            f"{target} at version {version_at_heal} vs majority "
            f"{reference_at_heal} just before the heal"))

        timings["partition_window"] = cluster.scheduler.now - partition_t
        cluster.heal_all()
        heal_t = cluster.scheduler.now

        # After healing, the partitioned master repairs the missed
        # broadcasts -- including the exclusions it never saw.
        liars = {f"slave-{liar_index:02d}-00", f"slave-{liar_index:02d}-01"}
        try:
            waited = await cluster.wait_for(
                lambda: liars <= target_master.excluded_slaves
                and target_master.version
                == reference_master(cluster).version,
                timeout=12.0, what="partitioned master catch-up")
            timings["heal_catchup"] = waited
        except TimeoutError:
            pass
        checks.append(_check(
            "accusations_propagated_through_heal",
            liars <= target_master.excluded_slaves,
            f"{target} learned {len(liars & target_master.excluded_slaves)}"
            f"/2 exclusions after the heal"))
        checks.append(_check(
            "partitioned_master_caught_up",
            target_master.version == reference_master(cluster).version,
            f"{target} at version {target_master.version} vs reference "
            f"{reference_master(cluster).version}"))

        post = await cluster.write(cluster.clients[0],
                                   KVPut(key="k", value="v1"), timeout=14.0)
        checks.append(_check(
            "post_heal_write", post["status"] == "committed",
            f"write after the heal: {post['status']}"))
        timings["heal_to_write"] = cluster.scheduler.now - heal_t

        await load.stop()
        checks.append(_check(
            "reads_survived", load.accepted > 0,
            f"{load.accepted} accepted, {load.timeouts} timed out, "
            f"{load.rejected} failed during the schedule"))
        await _drain(cluster)
        checks.extend(run_safety_checks(cluster))
        return _verdict(cluster, "partition_heal", seed, checks, timings)
    finally:
        await load.stop()
        await cluster.aclose()


# -- scenario: corrupt frames on every client<->slave link -----------------


async def corrupt_frames(seed: int = 0) -> ScenarioVerdict:
    config = fast_protocol_config(
        double_check_probability=0.1,
        request_timeout=1.0,
        max_read_retries=4,
    )
    spec = NetDeploymentSpec(num_masters=2, slaves_per_master=2,
                             num_clients=2, seed=seed, protocol=config)
    cluster = await launch_chaos(spec, settle=0.8)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    load = ReadLoad(cluster, KVGet(key="k"))
    try:
        write = await cluster.write(cluster.clients[0],
                                    KVPut(key="k", value="v0"))
        checks.append(_check("baseline_write", write["status"] == "committed",
                             f"pre-fault write: {write['status']}"))
        await asyncio.sleep(config.max_latency + config.keepalive_interval)

        # Benign asynchrony everywhere; byte corruption only on the
        # untrusted edges (the paper assumes secure channels between
        # trusted principals -- their integrity is the crypto's job on
        # the client/slave edges, the channel's job between masters).
        cluster.set_default_faults(LinkFaults(
            drop=0.03, duplicate=0.05, reorder=0.05,
            delay=0.002, delay_jitter=0.004))
        noisy = LinkFaults(corrupt=0.15, drop=0.03, duplicate=0.05,
                           reorder=0.05, delay=0.002, delay_jitter=0.004)
        for slave in cluster.slaves:
            for client in cluster.clients:
                cluster.set_link(slave.node_id, client.node_id, noisy,
                                 symmetric=True)

        chaos_t = cluster.scheduler.now
        load.start()
        await asyncio.sleep(5.0)
        mid = await cluster.write(cluster.clients[0],
                                  KVPut(key="k", value="v1"), timeout=14.0)
        checks.append(_check(
            "write_under_corruption", mid["status"] == "committed",
            f"write during the corruption schedule: {mid['status']}"))
        await asyncio.sleep(1.0)
        timings["corruption_window"] = cluster.scheduler.now - chaos_t
        cluster.plane.reset()
        await load.stop()

        corrupted = cluster.metrics.count("chaos_corrupted_frames")
        rejected = cluster.metrics.count("net_frames_rejected")
        checks.append(_check(
            "frames_actually_corrupted", corrupted >= 5,
            f"{corrupted:.0f} frames corrupted in transit, "
            f"{rejected:.0f} rejected by the codec"))
        checks.append(_check(
            "reads_survived", load.accepted >= 10,
            f"{load.accepted} accepted, {load.timeouts} timed out, "
            f"{load.rejected} failed during the schedule"))

        # A clean read after the faults are lifted proves liveness.
        await asyncio.sleep(config.max_latency + config.keepalive_interval)
        final = await cluster.read(cluster.clients[1], KVGet(key="k"),
                                   timeout=14.0)
        checks.append(_check(
            "post_chaos_read",
            final.get("status") == "accepted"
            and (final.get("result") or {}).get("value") == "v1",
            f"read after faults lifted: {final.get('status')} -> "
            f"{(final.get('result') or {}).get('value')!r}"))
        await _drain(cluster)
        checks.extend(run_safety_checks(cluster))
        return _verdict(cluster, "corrupt_frames", seed, checks, timings)
    finally:
        await load.stop()
        await cluster.aclose()


# -- scenario: auditor crash + failover + rejoin ---------------------------


async def auditor_failover(seed: int = 0) -> ScenarioVerdict:
    keepalive = 0.2
    config = fast_protocol_config(
        double_check_probability=0.0,  # every read goes the audit path
        keepalive_interval=keepalive,
        broadcast_heartbeat_interval=keepalive,
        broadcast_suspect_after=6 * keepalive,
        request_timeout=1.0,
    )
    spec = NetDeploymentSpec(num_masters=2, slaves_per_master=2,
                             num_clients=4, num_auditors=2, seed=seed,
                             protocol=config)
    cluster = await launch_chaos(spec, settle=0.8)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    load = ReadLoad(cluster, KVGet(key="k"))
    try:
        write = await cluster.write(cluster.clients[0],
                                    KVPut(key="k", value="v0"))
        checks.append(_check("baseline_write", write["status"] == "committed",
                             f"pre-fault write: {write['status']}"))
        await asyncio.sleep(config.max_latency + keepalive)
        load.start()
        await asyncio.sleep(0.5)

        # Crash the auditor client-00 reports to, so at least one client
        # demonstrably needs the failover.
        victim = cluster.clients[0].auditor_id
        affected = [c.node_id for c in cluster.clients
                    if c.auditor_id == victim]
        crash_t = cluster.scheduler.now
        await cluster.crash_node(victim)

        bound = K_DETECT * keepalive
        try:
            waited = await cluster.wait_for(
                lambda: cluster.metrics.count("auditor_crash_noticed") >= 1,
                timeout=3 * bound, what="auditor crash detection")
            timings["detection_latency"] = waited
        except TimeoutError:
            pass
        timings["detection_bound"] = bound
        noticed = cluster.metrics.count("auditor_crash_noticed")
        checks.append(_check(
            "auditor_crash_detected", noticed >= 1,
            f"masters noticed the crash {noticed:.0f} time(s)"))

        try:
            waited = await cluster.wait_for(
                lambda: all(c.auditor_id != victim for c in cluster.clients
                            if c.ready),
                timeout=10.0, what="auditor failover")
            timings["failover_done"] = waited
        except TimeoutError:
            pass
        remaining = [c.node_id for c in cluster.clients
                     if c.auditor_id == victim]
        checks.append(_check(
            "clients_failed_over", not remaining,
            f"{len(affected)} clients reported to {victim}; still "
            f"pointing at it: {remaining or 'none'}"))

        # Pledges keep flowing to the survivor while the victim is down.
        survivor = next(a for a in cluster.auditors
                        if a.node_id != victim)
        before = survivor.pledges_received
        await asyncio.sleep(1.5)
        checks.append(_check(
            "pledges_keep_flowing", survivor.pledges_received > before,
            f"survivor {survivor.node_id} pledges "
            f"{before} -> {survivor.pledges_received}"))

        await cluster.restart_node(victim)
        try:
            waited = await cluster.wait_for(
                lambda: cluster.metrics.count("auditor_recovery_noticed")
                >= 1,
                timeout=10.0, what="auditor rejoin")
            timings["rejoin_noticed"] = waited
        except TimeoutError:
            pass
        rejoined = cluster.metrics.count("auditor_recovery_noticed")
        checks.append(_check(
            "auditor_rejoined", rejoined >= 1,
            f"masters noticed the recovery {rejoined:.0f} time(s)"))
        timings["fault_window"] = cluster.scheduler.now - crash_t

        await load.stop()
        checks.append(_check(
            "reads_survived", load.accepted > 0,
            f"{load.accepted} accepted, {load.timeouts} timed out, "
            f"{load.rejected} failed during the schedule"))
        await _drain(cluster)
        checks.extend(run_safety_checks(cluster))
        return _verdict(cluster, "auditor_failover", seed, checks, timings)
    finally:
        await load.stop()
        await cluster.aclose()


# -- scenario: slave crash + restart with resync ---------------------------


async def slave_crash(seed: int = 0) -> ScenarioVerdict:
    config = fast_protocol_config(
        double_check_probability=0.05,
        request_timeout=1.0,
        max_read_retries=4,
    )
    spec = NetDeploymentSpec(num_masters=2, slaves_per_master=2,
                             num_clients=2, seed=seed, protocol=config)
    cluster = await launch_chaos(spec, settle=0.8)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    load = ReadLoad(cluster, KVGet(key="k"))
    try:
        write = await cluster.write(cluster.clients[0],
                                    KVPut(key="k", value="v0"))
        checks.append(_check("baseline_write", write["status"] == "committed",
                             f"pre-fault write: {write['status']}"))
        await asyncio.sleep(config.max_latency + config.keepalive_interval)
        load.start()
        await asyncio.sleep(0.5)

        # Crash a slave that is actually serving a client.
        victim = cluster.clients[0].assigned_slaves[0]
        crash_t = cluster.scheduler.now
        await cluster.crash_node(victim)

        # Write while the slave is down so the restart has a version gap
        # to resync across.
        gap_write = await cluster.write(cluster.clients[0],
                                        KVPut(key="k", value="v1"),
                                        timeout=14.0)
        checks.append(_check(
            "write_during_outage", gap_write["status"] == "committed",
            f"write while {victim} was down: {gap_write['status']}"))
        await asyncio.sleep(2.0)

        await cluster.restart_node(victim)
        restart_t = cluster.scheduler.now
        timings["outage"] = restart_t - crash_t
        victim_slave = next(s for s in cluster.slaves
                            if s.node_id == victim)
        try:
            waited = await cluster.wait_for(
                lambda: victim_slave.version
                == reference_master(cluster).version,
                timeout=10.0, what="slave resync after restart")
            timings["resync"] = waited
        except TimeoutError:
            pass
        checks.append(_check(
            "slave_resynced",
            victim_slave.version == reference_master(cluster).version,
            f"{victim} at version {victim_slave.version} vs reference "
            f"{reference_master(cluster).version} after restart"))

        await load.stop()
        checks.append(_check(
            "reads_survived", load.accepted > 0,
            f"{load.accepted} accepted, {load.timeouts} timed out, "
            f"{load.rejected} failed during the schedule"))
        await _drain(cluster)
        checks.extend(run_safety_checks(cluster))
        return _verdict(cluster, "slave_crash", seed, checks, timings)
    finally:
        await load.stop()
        await cluster.aclose()


# -- scenario: flash crowd vs admission control (repro.qos) ----------------


def _p99(durations: list[float]) -> float:
    """The p99 of a duration sample (inf when the sample is empty)."""
    if not durations:
        return float("inf")
    ordered = sorted(durations)
    index = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[index]


def _honest_read_durations(cluster: ChaosCluster, honest: set[str],
                           start: float, end: float) -> list[float]:
    """Durations of every *ended* honest ``client.read`` span in a window.

    Failed reads are included on purpose: excluding them would let the
    overloaded variant look healthy by only timing the reads that got
    through (survivorship bias).
    """
    durations = []
    for span in _spans(cluster):
        if (span.op == "client.read" and span.node in honest
                and span.end is not None and start <= span.start <= end):
            durations.append(span.end - span.start)
    return durations


def _keepalive_max_gap(cluster: ChaosCluster, slave_id: str,
                       start: float, end: float) -> float:
    """Longest keep-alive arrival gap at one slave inside [start, end]."""
    timeline = cluster.metrics.timelines.get(f"keepalive_rx@{slave_id}")
    points = [] if timeline is None else \
        [at for at, _value in timeline.points if start <= at <= end]
    edges = [start, *sorted(points), end]
    return max(b - a for a, b in zip(edges, edges[1:]))


def _shed_breakdown(counters: dict[str, float]) -> tuple[float, float,
                                                         float]:
    """(total, by-reason sum, by-client sum) of the ``qos_shed_*`` family."""
    total = counters.get("qos_shed_total", 0.0)
    by_client = sum(v for k, v in counters.items()
                    if k.startswith("qos_shed_from_"))
    by_reason = sum(v for k, v in counters.items()
                    if k.startswith("qos_shed_")
                    and not k.startswith("qos_shed_from_")
                    and k != "qos_shed_total")
    return total, by_reason, by_client


async def flash_crowd(seed: int = 0, qos: bool = True) -> ScenarioVerdict:
    """Greedy-client burst vs the serving plane's admission control.

    Two honest readers keep a steady trickle going; six greedy clients
    then pin ~288 concurrent reads (each also double-checking with its
    master) against the same slaves for several seconds.  The verdict is
    span-derived: honest read p99 during the burst must stay within an
    SLO derived from the pre-burst baseline, keep-alives must never miss
    the Section 3.1 freshness window, and every shed frame must be
    attributed (total == by-reason == by-client).  ``qos=False`` runs
    the identical burst with admission control off -- the configuration
    the SLO demonstrably does NOT survive (asserted in tests).
    """
    keepalive = 0.2
    honest_count, greedy_count = 2, 6
    overrides: dict[str, Any] = {}
    if qos:
        # Honest clients need well under 40 frames/s per listener; the
        # crowd's closed loop wants hundreds.  The burst allowance is
        # deliberately small so the crowd cannot ride burst refills.
        overrides.update(
            qos_frame_rate=15.0, qos_frame_burst=20.0,
            qos_inbox_limit=512, qos_idle_multiple=10.0)
    config = fast_protocol_config(
        keepalive_interval=keepalive,
        # Honest clients never double-check (their latency is pure
        # read-path); greedy clients override to 1.0 below so the crowd
        # hits masters too.
        double_check_probability=0.0,
        request_timeout=1.25,
        max_read_retries=2,
        # Disable the Section 3.3 protocol-level throttle so the burst
        # genuinely reaches the wire layer this scenario is about.
        greedy_allowance_rate=100_000.0,
        greedy_drop_fraction=0.0,
        **overrides,
    )
    spec = NetDeploymentSpec(
        num_masters=2, slaves_per_master=2,
        num_clients=honest_count + greedy_count, seed=seed,
        protocol=config, obs_enabled=True,
        client_double_check_overrides={
            i: 1.0 for i in range(honest_count,
                                  honest_count + greedy_count)})
    cluster = await launch_chaos(spec, settle=0.8)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    honest_clients = cluster.clients[:honest_count]
    honest_ids = {c.node_id for c in honest_clients}
    # A 10/s trickle per honest client (sent to both assigned slaves)
    # sits well inside the 15 frames/s admission budget, so honest
    # traffic is never the one shed.
    load = ReadLoad(cluster, KVGet(key="k"), interval=0.1,
                    clients=honest_clients)
    # The crowd hammers a bulky value: every greedy read costs the slave
    # a real 1 MiB encode + SHA-1 (and its master the double-check
    # re-execution), so the burst saturates CPU, not just socket
    # buffers.
    # 48 tasks x 6 clients = ~288 reads in flight: enough to saturate
    # a single core with 1 MiB encodes, low enough that the backlog
    # drains and the scenario's wall-clock stays bounded.
    crowd = FlashCrowd(cluster, cluster.clients[honest_count:],
                       KVGet(key="bulk"), concurrency=48)
    try:
        write = await cluster.write(cluster.clients[0],
                                    KVPut(key="k", value="v0"))
        checks.append(_check("baseline_write", write["status"] == "committed",
                             f"pre-burst write: {write['status']}"))
        bulk = await cluster.write(
            cluster.clients[0], KVPut(key="bulk", value="x" * 1048576))
        checks.append(_check(
            "bulk_write", bulk["status"] == "committed",
            f"crowd-target write: {bulk['status']}"))
        await asyncio.sleep(config.max_latency + keepalive)

        # Baseline window: honest trickle alone, to derive the SLO from
        # what this host can actually do rather than a magic number.
        load.start()
        baseline_t0 = cluster.scheduler.now
        await asyncio.sleep(2.0)
        baseline_t1 = cluster.scheduler.now
        baseline_p99 = _p99(_honest_read_durations(
            cluster, honest_ids, baseline_t0, baseline_t1))
        # Floor at 0.1s (noise immunity on slow hosts), cap at 0.15s so
        # a noisy baseline sample cannot inflate the SLO into something
        # even the unprotected burst satisfies.
        slo = min(max(4.0 * baseline_p99, 0.1), 0.15)
        timings["baseline_p99"] = baseline_p99
        timings["slo"] = slo

        # The burst: ~288 closed-loop greedy reads in flight.
        crowd.start()
        # Let the crowd's closed loop reach steady state before the
        # measured window opens -- the ramp's half-filled pipelines
        # would otherwise dilute the burst percentiles.
        await asyncio.sleep(0.5)
        burst_t0 = cluster.scheduler.now
        await asyncio.sleep(6.0)
        burst_t1 = cluster.scheduler.now
        await crowd.stop()
        await load.stop()
        timings["burst_window"] = burst_t1 - burst_t0

        burst_durations = _honest_read_durations(
            cluster, honest_ids, burst_t0, burst_t1)
        burst_p99 = _p99(burst_durations)
        timings["burst_p99"] = burst_p99
        checks.append(_check(
            "honest_p99_slo", burst_p99 <= slo,
            f"honest read p99 {burst_p99:.3f}s over {len(burst_durations)}"
            f" reads during the burst vs SLO {slo:.3f}s "
            f"(baseline p99 {baseline_p99:.3f}s)"))

        # Keep-alives are never shed: every slave's freshness window
        # must hold right through the burst.
        worst_gap, worst_slave = 0.0, "-"
        for slave in cluster.slaves:
            gap = _keepalive_max_gap(cluster, slave.node_id,
                                     burst_t0, burst_t1)
            if gap > worst_gap:
                worst_gap, worst_slave = gap, slave.node_id
        timings["worst_keepalive_gap"] = worst_gap
        checks.append(_check(
            "keepalives_never_missed", worst_gap < config.max_latency,
            f"worst keep-alive gap during the burst {worst_gap:.2f}s "
            f"(at {worst_slave}) vs max_latency {config.max_latency}s"))

        counters = cluster.metrics.snapshot()
        total, by_reason, by_client = _shed_breakdown(counters)
        if qos:
            checks.append(_check(
                "sheds_happened", total > 0,
                f"{total:.0f} frames shed by admission control"))
            checks.append(_check(
                "sheds_attributed",
                total == by_reason == by_client,
                f"qos_shed_total {total:.0f} == by-reason {by_reason:.0f}"
                f" == by-client {by_client:.0f}"))
        checks.append(_check(
            "reads_survived", load.accepted > 0,
            f"honest: {load.accepted} accepted, {load.timeouts} timed "
            f"out, {load.rejected} failed; crowd: {crowd.attempts} "
            f"attempts, {crowd.completed} completed"))
        await _drain(cluster)
        checks.extend(run_safety_checks(cluster))
        name = "flash_crowd" if qos else "flash_crowd_unprotected"
        return _verdict(cluster, name, seed, checks, timings)
    finally:
        await crowd.stop()
        await load.stop()
        await cluster.aclose()


# -- scenario: online shard rebalance under live traffic -------------------


class ShardedChaosCluster(ChaosCluster, ShardedCluster):
    """A sharded multi-tenant deployment with the chaos fault plane.

    Pure composition: :class:`ChaosCluster` contributes the
    fault-injecting pools and scripted-fault vocabulary,
    :class:`~repro.shard.deploy.ShardedCluster` the multi-tenant build.
    """


async def shard_rebalance(seed: int = 0) -> ScenarioVerdict:
    """Move a shard between master groups under live router load.

    Verifies the §3.5-reuse story end to end: the freeze/snapshot/
    certify/republish block never loses committed history (per-shard
    safety oracle), clients re-home via WrongShard within the
    detection bound, the bystander shard never blips, and the
    read-unavailability window -- measured both from accepted-read
    gaps and from the ``shard.rebalance`` span -- stays bounded.
    """
    keepalive = 0.2
    config = fast_protocol_config(
        double_check_probability=0.0,
        keepalive_interval=keepalive,
        broadcast_heartbeat_interval=keepalive,
        broadcast_suspect_after=6 * keepalive,
        request_timeout=1.0,
        max_read_retries=4,
    )
    spec = ShardDeploymentSpec(
        num_masters=2, slaves_per_master=1, num_clients=2,
        num_auditors=1, num_shards=2, num_hosts=2, seed=seed,
        protocol=config, obs_enabled=True)
    cluster = await ShardedChaosCluster.launch(spec, settle=0.8)
    assert isinstance(cluster, ShardedChaosCluster)
    checks: list[CheckResult] = []
    timings: dict[str, float] = {}
    router = cluster.routers[0]
    # One key per shard: the moved shard's key drives the measured
    # load, the bystander's key proves isolation.
    keys_by_shard: dict[str, str] = {}
    index = 0
    while len(keys_by_shard) < 2:
        key = f"k{index}"
        keys_by_shard.setdefault(router.shard_for(KVGet(key=key)), key)
        index += 1
    moved = router.shard_for(KVGet(key="k0"))
    bystander = next(s for s in keys_by_shard if s != moved)
    load = ReadLoad(cluster, KVGet(key=keys_by_shard[moved]),
                    clients=list(cluster.routers))
    calm = ReadLoad(cluster, KVGet(key=keys_by_shard[bystander]),
                    clients=list(cluster.routers))
    try:
        for shard_id, key in keys_by_shard.items():
            write = await cluster.write(router,
                                        KVPut(key=key, value=f"v:{key}"))
            checks.append(_check(
                f"baseline_write_{shard_id}",
                write["status"] == "committed",
                f"pre-move write to {shard_id}: {write['status']}"))
        await asyncio.sleep(config.max_latency + keepalive)
        load.start()
        calm.start()
        await asyncio.sleep(0.5)

        move_t = cluster.scheduler.now
        report = await Rebalancer(cluster).move_shard(moved)
        timings["slaves_resynced"] = report["slaves_resynced_at"]
        new_ids = {m.node_id for m in cluster.shards[moved].masters}
        checks.append(_check(
            "new_generation_installed",
            cluster.shards[moved].generation == 1
            and cluster.map_epoch == 2,
            f"{moved} at generation "
            f"{cluster.shards[moved].generation}, map epoch "
            f"{cluster.map_epoch}"))

        # Re-home: every leg homed on the moved shard must land on the
        # new master group within the detection bound (the redirect
        # arrives with the next read; setup re-runs against the
        # republished directory).
        bound = K_DETECT * keepalive
        legs = cluster.shards[moved].clients
        try:
            waited = await cluster.wait_for(
                lambda: all(leg.ready and leg.master_id in new_ids
                            for leg in legs),
                timeout=3 * bound, what="client re-home")
            timings["rehome_latency"] = waited
        except TimeoutError:
            timings["rehome_latency"] = float("inf")
        timings["rehome_bound"] = bound
        stranded = [leg.node_id for leg in legs
                    if not leg.ready or leg.master_id not in new_ids]
        checks.append(_check(
            "clients_rehomed_within_bound",
            timings["rehome_latency"] <= bound and not stranded,
            f"{len(legs)} legs re-homed in "
            f"{timings['rehome_latency']:.2f}s (bound {bound:.2f}s = "
            f"{K_DETECT} x keepalive); stranded: {stranded or 'none'}"))
        redirects = cluster.metrics.count("router_wrong_shard")
        checks.append(_check(
            "rehome_was_redirect_driven", redirects >= 1,
            f"{redirects:.0f} WrongShard redirects reached routers"))

        # Liveness on the moved shard after the move.
        post = await cluster.write(
            router, KVPut(key=keys_by_shard[moved], value="v1"),
            timeout=14.0)
        checks.append(_check(
            "post_move_write", post["status"] == "committed",
            f"write to {moved} after the move: {post['status']}"))
        await asyncio.sleep(config.max_latency + keepalive)
        end_t = cluster.scheduler.now
        await load.stop()
        await calm.stop()

        # Unavailability, measured two ways: the longest accepted-read
        # gap on the moved shard, and the rebalance span itself.
        gap_bound = bound + config.request_timeout
        gap = load.max_gap(move_t, end_t)
        timings["read_unavailability"] = gap
        timings["read_unavailability_bound"] = gap_bound
        checks.append(_check(
            "unavailability_bounded", gap <= gap_bound,
            f"longest accepted-read gap on {moved} was {gap:.2f}s "
            f"(bound {gap_bound:.2f}s)"))
        calm_gap = calm.max_gap(move_t, end_t)
        timings["bystander_max_gap"] = calm_gap
        checks.append(_check(
            "bystander_shard_unaffected", calm_gap <= gap_bound / 2,
            f"longest accepted-read gap on bystander {bystander} was "
            f"{calm_gap:.2f}s"))
        spans = [s for s in _spans(cluster)
                 if s.op == "shard.rebalance" and s.end is not None]
        span_window = max((s.end - s.start for s in spans),
                          default=float("inf"))
        timings["rebalance_span"] = span_window
        checks.append(_check(
            "rebalance_span_recorded", span_window <= gap_bound,
            f"shard.rebalance span covered {span_window:.2f}s "
            f"({len(spans)} span(s) recorded)"))

        await _drain(cluster)
        for shard_id, results in run_shard_safety_checks(cluster).items():
            for result in results:
                checks.append(CheckResult(
                    name=f"{shard_id}:{result.name}",
                    passed=result.passed, detail=result.detail))
        return _verdict(cluster, "shard_rebalance", seed, checks,
                        timings)
    finally:
        await load.stop()
        await calm.stop()
        await cluster.aclose()


# -- registry and runners --------------------------------------------------


SCENARIOS: dict[str, Callable[[int], Awaitable[ScenarioVerdict]]] = {
    "master_crash": master_crash,
    "partition_heal": partition_heal,
    "corrupt_frames": corrupt_frames,
    "auditor_failover": auditor_failover,
    "slave_crash": slave_crash,
    "flash_crowd": flash_crowd,
    "shard_rebalance": shard_rebalance,
}

#: Hard wall-clock ceiling per scenario.  Normal runs finish in well
#: under 20s; the ceiling turns any wedged wait into a named failure
#: instead of a hung test run (cluster teardown still runs via the
#: scenario's own ``finally``).
SCENARIO_DEADLINE = 120.0


async def run_scenario(name: str, seed: int = 0) -> ScenarioVerdict:
    """Run one named scenario; raises ``KeyError`` for unknown names."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"known: {sorted(SCENARIOS)}") from None
    try:
        return await asyncio.wait_for(scenario(seed), SCENARIO_DEADLINE)
    except asyncio.TimeoutError:
        raise TimeoutError(
            f"scenario {name!r} (seed {seed}) exceeded the "
            f"{SCENARIO_DEADLINE:.0f}s deadline") from None


def run_scenario_sync(name: str, seed: int = 0) -> ScenarioVerdict:
    """Synchronous wrapper for the CLI and tests."""
    return asyncio.run(run_scenario(name, seed))


async def run_all(seed: int = 0) -> list[ScenarioVerdict]:
    """Run the full catalog sequentially (each gets a fresh cluster)."""
    return [await run_scenario(name, seed) for name in SCENARIOS]


__all__ = [
    "K_DETECT",
    "FlashCrowd",
    "ReadLoad",
    "SCENARIOS",
    "SCENARIO_DEADLINE",
    "ScenarioVerdict",
    "ShardedChaosCluster",
    "run_all",
    "run_scenario",
    "run_scenario_sync",
]

"""Deterministic chaos engineering for the socket stack.

Everything the simulator can do to a deployment -- drop, delay,
duplicate, reorder and corrupt messages, partition links, crash and
restart nodes -- replayed against the *real* transport
(:mod:`repro.net`), with every decision drawn from seeded per-link
streams so a failing schedule replays exactly.

Layers:

* :mod:`repro.chaos.faults` -- the per-link fault plane and the
  fault-injecting connection pool;
* :mod:`repro.chaos.cluster` -- :class:`ChaosCluster`, a
  :class:`~repro.net.deploy.LocalCluster` wired through the fault plane
  with node crash/restart lifecycle faults;
* :mod:`repro.chaos.invariants` -- the offline safety oracle (zero
  accepted stale/forged reads, consistency window, convergence);
* :mod:`repro.chaos.scenarios` -- the named scenario catalog with
  per-scenario JSON verdicts (also behind ``repro-sim chaos``).
"""

from repro.chaos.cluster import ChaosCluster
from repro.chaos.faults import (
    HEALTHY,
    ChaosConnectionPool,
    FaultPlane,
    FramePlan,
    LinkFaults,
)
from repro.chaos.invariants import CheckResult, run_safety_checks
from repro.chaos.scenarios import (
    SCENARIOS,
    ScenarioVerdict,
    run_scenario,
    run_scenario_sync,
)

__all__ = [
    "HEALTHY",
    "ChaosCluster",
    "ChaosConnectionPool",
    "CheckResult",
    "FaultPlane",
    "FramePlan",
    "LinkFaults",
    "SCENARIOS",
    "ScenarioVerdict",
    "run_safety_checks",
    "run_scenario",
    "run_scenario_sync",
]

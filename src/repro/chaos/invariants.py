"""Offline safety oracle for chaos runs against a socket cluster.

The same ground-truth checks :class:`repro.core.system.ReplicationSystem`
performs after a simulation, ported to :class:`repro.net.deploy.LocalCluster`:
replay the trusted op log to reconstruct the content at every committed
version, then hold every accepted read against it.  Under chaos the
reference master must be chosen (the rank-0 master may be the one that
was crashed), so the checker picks the live master with the longest
archive and additionally verifies the survivors agree with it.

These checks close the loop the paper's Section 3.5 leaves to the
reader: after crashes, partitions and corrupted frames, no client may
have accepted a stale or forged result, and the surviving trusted set
must have converged on one history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro.content.queries import ReadQuery, operation_from_wire
from repro.content.store import ContentStore
from repro.core.client import Client
from repro.core.config import ProtocolConfig
from repro.core.master import MasterServer
from repro.crypto.hashing import constant_time_equals, sha1_hex
from repro.sim.network import Node


class ClusterLike(Protocol):
    """The cluster surface the oracle needs (structural).

    Satisfied by :class:`repro.net.deploy.LocalCluster` (whole-cluster
    checks) and by :class:`repro.shard.deploy.ShardView` (one shard's
    master group and router legs), so the same ground-truth replay
    verifies both flat and sharded deployments.
    """

    masters: list[MasterServer]
    clients: list[Client]
    initial_store: ContentStore
    config: ProtocolConfig

    def node(self, node_id: str) -> Node: ...


@dataclass(frozen=True, slots=True)
class CheckResult:
    """One named invariant verdict with a human-readable detail."""

    name: str
    passed: bool
    detail: str

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail}


def reference_master(cluster: ClusterLike) -> MasterServer:
    """The master whose archive defines trusted history for the run.

    Prefer non-crashed masters; among those, the longest archive wins
    (a master that restarted mid-run may have gaps the survivors do
    not).  Ties break by node id for determinism.
    """
    candidates = sorted(
        cluster.masters,
        key=lambda m: (not m.crashed, len(m._ops_archive), m.node_id),
        reverse=True)
    return candidates[0]


def trusted_version_stores(cluster: ClusterLike,
                           reference: MasterServer) -> dict[int, ContentStore]:
    """Replay the reference master's op archive from the initial content."""
    stores: dict[int, ContentStore] = {}
    current = cluster.initial_store.clone()
    stores[0] = current.clone()
    version = 0
    while version in reference._ops_archive:
        current.apply_write(
            operation_from_wire(reference._ops_archive[version]))
        version += 1
        stores[version] = current.clone()
    return stores


def check_no_forged_reads(cluster: ClusterLike) -> CheckResult:
    """Every accepted read matches the trusted re-execution at its version."""
    reference = reference_master(cluster)
    stores = trusted_version_stores(cluster, reference)
    cache: dict[tuple[int, str], str] = {}
    total = 0
    wrong: list[str] = []
    unverifiable = 0
    for client in cluster.clients:
        for record in client.accepted_log:
            total += 1
            key = (record.version, sha1_hex(record.query_wire))
            trusted_hash = cache.get(key)
            if trusted_hash is None:
                store = stores.get(record.version)
                if store is None:
                    unverifiable += 1
                    continue
                query = operation_from_wire(record.query_wire)
                assert isinstance(query, ReadQuery)
                trusted_hash = sha1_hex(store.execute_read(query).result)
                cache[key] = trusted_hash
            if not constant_time_equals(record.result_hash, trusted_hash):
                wrong.append(record.request_id)
    # A version beyond the reference archive would mean a client accepted
    # content the trusted history cannot account for -- treat as failure.
    passed = not wrong and not unverifiable
    return CheckResult(
        name="no_forged_reads", passed=passed,
        detail=(f"{total} accepted reads, {len(wrong)} forged "
                f"({wrong[:5]}), {unverifiable} beyond trusted history"
                if not passed else f"{total} accepted reads all match "
                f"trusted history (reference {reference.node_id})"))


def check_consistency_window(cluster: ClusterLike,
                             slack: float = 0.05) -> CheckResult:
    """Section 3.1's max_latency bound over every accepted read.

    ``slack`` absorbs real-clock scheduling noise (the simulator uses
    1e-9; an event loop under load needs tens of milliseconds).
    """
    reference = reference_master(cluster)
    commit_times = reference.commit_times
    bound = cluster.config.effective_client_max_latency()
    violations = 0
    total = 0
    for client in cluster.clients:
        client_bound = max(bound, client.max_latency)
        for record in client.accepted_log:
            total += 1
            next_commit = commit_times.get(record.version + 1)
            if next_commit is None:
                continue
            if record.accepted_at > next_commit + client_bound + slack:
                violations += 1
    return CheckResult(
        name="consistency_window", passed=violations == 0,
        detail=f"{violations} of {total} accepted reads outside the "
               f"{bound:.2f}s window (+{slack:.2f}s slack)")


def check_survivors_converged(cluster: ClusterLike) -> CheckResult:
    """Every live master agrees with the reference version and history."""
    reference = reference_master(cluster)
    lagging: list[str] = []
    diverged: list[str] = []
    for master in cluster.masters:
        if master.crashed:
            continue
        if master.version != reference.version:
            lagging.append(f"{master.node_id}@{master.version}")
            continue
        for version, op in master._ops_archive.items():
            if reference._ops_archive.get(version) != op:
                diverged.append(f"{master.node_id}@{version}")
                break
    passed = not lagging and not diverged
    return CheckResult(
        name="survivors_converged", passed=passed,
        detail=(f"reference {reference.node_id}@{reference.version}; "
                f"lagging={lagging} diverged={diverged}" if not passed
                else f"all live masters at version {reference.version} "
                f"with identical histories"))


def check_clients_on_live_masters(cluster: ClusterLike) -> CheckResult:
    """No ready client is still pointed at a crashed master."""
    stranded = [
        client.node_id for client in cluster.clients
        if client.ready and client.master_id is not None
        and cluster.node(client.master_id).crashed
    ]
    return CheckResult(
        name="clients_on_live_masters", passed=not stranded,
        detail=(f"stranded on crashed masters: {stranded}" if stranded
                else f"{len(cluster.clients)} clients all assigned to "
                f"live masters"))


def run_safety_checks(cluster: ClusterLike,
                      window_slack: float = 0.05) -> list[CheckResult]:
    """The full post-run oracle; call after faults healed and load stopped."""
    return [
        check_no_forged_reads(cluster),
        check_consistency_window(cluster, slack=window_slack),
        check_survivors_converged(cluster),
        check_clients_on_live_masters(cluster),
    ]


__all__ = [
    "CheckResult",
    "ClusterLike",
    "check_clients_on_live_masters",
    "check_consistency_window",
    "check_no_forged_reads",
    "check_survivors_converged",
    "reference_master",
    "run_safety_checks",
    "trusted_version_stores",
]

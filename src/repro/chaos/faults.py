"""Seeded per-link fault plane and the fault-injecting connection pool.

The :class:`FaultPlane` is the single decision authority for every link
in a deployment: for each ``(src, dst)`` pair it holds a
:class:`LinkFaults` profile (probabilities and shaping parameters) and a
private random stream derived from ``seed`` and the link name alone --
*not* from fork order or traffic interleaving -- so the fate of the
n-th frame on a link is a pure function of ``(seed, src, dst, n)``.
Wall-clock timing over real sockets still varies run to run; the fault
*decisions* do not, which is what makes a failing schedule replayable.

:class:`ChaosConnectionPool` applies those decisions inside the sender
path of :class:`~repro.net.transport.ConnectionPool`:

* drop / duplicate / delay / reorder act on whole messages before they
  are queued (mirroring what a lossy, reordering network does);
* corrupt-frame and throttle act at the byte layer via the pool's
  ``_transmit`` seam -- a corrupted frame keeps its header intact so
  the receiver stays frame-aligned and must survive the garbage *body*
  (codec rejection, signature failure or a contained handler error);
* partitions silently eat every frame in both directions until healed,
  exactly like :meth:`repro.sim.network.Network.partition`.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any

from repro.metrics import MetricsRegistry
from repro.net import codec
from repro.net.peers import PeerDirectory
from repro.net.transport import ConnectionPool, RetryPolicy, _Peer
from repro.qos.breaker import BreakerPolicy


@dataclass(frozen=True, slots=True)
class LinkFaults:
    """Fault profile for one directed link (all probabilities per frame).

    ``delay``/``delay_jitter`` are seconds added before the frame is
    queued; ``throttle_bps`` serialises the link's bytes at that rate
    (0 = unlimited).  The all-defaults instance is a healthy link.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    delay_jitter: float = 0.0
    throttle_bps: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}")
        for name in ("delay", "delay_jitter", "throttle_bps"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def healthy(self) -> bool:
        return self == HEALTHY


HEALTHY = LinkFaults()


@dataclass(frozen=True, slots=True)
class FramePlan:
    """One frame's fate, decided by the plane before the frame moves."""

    drop: bool = False
    corrupt: bool = False
    duplicates: int = 0
    hold: bool = False
    delay: float = 0.0


_PASS = FramePlan()


class FaultPlane:
    """Shared, seeded fault-decision authority for every link.

    Mirrors the simulator's fault API (:class:`repro.sim.network.Network`
    partitions plus loss/latency knobs) for the socket stack.  All
    mutators are plain synchronous calls, so scripted schedules are just
    code that calls them at chosen times.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._default = HEALTHY
        self._links: dict[tuple[str, str], LinkFaults] = {}
        self._rngs: dict[tuple[str, str], random.Random] = {}
        self._partitions: set[frozenset[str]] = set()
        #: Total frames planned; a cheap determinism fingerprint.
        self.decisions = 0

    # -- profile management ----------------------------------------------

    def set_default(self, faults: LinkFaults) -> None:
        """Profile for every link without an explicit entry."""
        self._default = faults

    def set_link(self, src: str, dst: str, faults: LinkFaults,
                 symmetric: bool = False) -> None:
        """Profile for the ``src -> dst`` link (both ways if symmetric)."""
        self._links[(src, dst)] = faults
        if symmetric:
            self._links[(dst, src)] = faults

    def clear_link(self, src: str, dst: str, symmetric: bool = False) -> None:
        self._links.pop((src, dst), None)
        if symmetric:
            self._links.pop((dst, src), None)

    def reset(self) -> None:
        """Drop every profile and partition; decision streams persist."""
        self._default = HEALTHY
        self._links.clear()
        self._partitions.clear()

    def faults_for(self, src: str, dst: str) -> LinkFaults:
        return self._links.get((src, dst), self._default)

    # -- partitions (bidirectional, like the simulator's) ------------------

    def partition(self, a: str, b: str) -> None:
        """Cut both directions between ``a`` and ``b``."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- per-frame decisions ----------------------------------------------

    def _rng(self, src: str, dst: str) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            # Keyed by seed and link name only (never fork order), so a
            # link's decision stream survives topology/traffic changes.
            rng = random.Random(f"{self._seed}/chaos/{src}->{dst}")
            self._rngs[key] = rng
        return rng

    def plan(self, src: str, dst: str) -> FramePlan:
        """Decide one frame's fate on ``src -> dst``.

        Every probability is drawn on every call, in a fixed order, so
        the link's stream position is exactly its frame count.
        """
        faults = self.faults_for(src, dst)
        if faults.healthy:
            return _PASS
        self.decisions += 1
        rng = self._rng(src, dst)
        drop = rng.random() < faults.drop
        corrupt = rng.random() < faults.corrupt
        duplicates = 1 if rng.random() < faults.duplicate else 0
        hold = rng.random() < faults.reorder
        delay = 0.0
        if faults.delay or faults.delay_jitter:
            delay = faults.delay + rng.random() * faults.delay_jitter
        if drop:
            return FramePlan(drop=True)
        return FramePlan(corrupt=corrupt, duplicates=duplicates,
                         hold=hold, delay=delay)

    def randrange(self, src: str, dst: str, low: int, high: int) -> int:
        """One extra draw from the link's stream (corruption offsets)."""
        return self._rng(src, dst).randrange(low, high)


class _Corrupted:
    """Marks a message whose encoded frame must be damaged in transit."""

    __slots__ = ("message",)

    def __init__(self, message: Any) -> None:
        self.message = message


class ChaosConnectionPool(ConnectionPool):
    """A :class:`ConnectionPool` whose frames answer to a fault plane.

    Message-level faults (drop, duplicate, delay, reorder, partition)
    are applied in :meth:`send`, before queueing; byte-level faults
    (corrupt, throttle) in :meth:`_transmit`, after framing.  Reordered
    frames are parked until the next frame to the same destination
    passes them, with a timer backstop so a quiet link still delivers.
    """

    #: Backstop: a held (reordered) frame is flushed after this long
    #: even if no later frame comes along to overtake it.
    REORDER_FLUSH = 0.05

    def __init__(self, node_id: str, peers: PeerDirectory,
                 metrics: MetricsRegistry, rng: random.Random,
                 plane: FaultPlane,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 2.0,
                 io_timeout: float = 5.0,
                 max_batch: int = 64,
                 breaker: BreakerPolicy | None = None) -> None:
        # max_batch governs queue draining only: this pool overrides
        # _transmit, so the base pool feeds it one message at a time and
        # frames are never coalesced on the wire (fault fates stay
        # addressed per (seed, link, frame-index)).
        super().__init__(node_id, peers, metrics, rng, retry=retry,
                         connect_timeout=connect_timeout,
                         io_timeout=io_timeout,
                         max_batch=max_batch,
                         breaker=breaker)
        self.plane = plane
        self._held: dict[str, list[Any]] = {}
        self._throttle_free: dict[str, float] = {}

    # -- message-level faults ---------------------------------------------

    def send(self, dst_id: str, message: Any) -> None:
        if self._closed:
            return
        if self.plane.is_partitioned(self.node_id, dst_id):
            self._drop(dst_id, "partitioned")
            return
        plan = self.plane.plan(self.node_id, dst_id)
        if plan.drop:
            self._drop(dst_id, "chaos")
            return
        payload: Any = message
        if plan.corrupt:
            payload = _Corrupted(message)
            self.metrics.incr("chaos_corrupted_frames")
        if plan.duplicates:
            self.metrics.incr("chaos_duplicated_frames", plan.duplicates)
        if plan.hold:
            self.metrics.incr("chaos_reordered_frames")
            self._held.setdefault(dst_id, []).append(payload)
            asyncio.get_running_loop().call_later(
                self.REORDER_FLUSH, self._flush_held, dst_id)
            return
        self._forward(dst_id, payload, plan.duplicates, plan.delay)
        # Anything parked on this link is now out of order; release it.
        self._flush_held(dst_id)

    def _forward(self, dst_id: str, payload: Any, duplicates: int,
                 delay: float) -> None:
        if delay > 0:
            self.metrics.incr("chaos_delayed_frames")
            asyncio.get_running_loop().call_later(
                delay, self._enqueue, dst_id, payload, duplicates)
        else:
            self._enqueue(dst_id, payload, duplicates)

    def _enqueue(self, dst_id: str, payload: Any, duplicates: int) -> None:
        for _copy in range(1 + duplicates):
            super().send(dst_id, payload)

    def _flush_held(self, dst_id: str) -> None:
        held = self._held.get(dst_id)
        if held:
            self._held[dst_id] = []
            for payload in held:
                self._enqueue(dst_id, payload, 0)

    # -- byte-level faults -------------------------------------------------

    async def _transmit(self, dst_id: str, peer: _Peer, message: Any) -> int:
        payload = message
        corrupted = isinstance(payload, _Corrupted)
        if corrupted:
            payload = payload.message
        frame = codec.encode_frame(payload)
        if corrupted:
            frame = self._damage(dst_id, frame)
        faults = self.plane.faults_for(self.node_id, dst_id)
        if faults.throttle_bps > 0:
            await self._throttle(dst_id, len(frame), faults.throttle_bps)
        assert peer.writer is not None
        peer.writer.write(frame)
        await asyncio.wait_for(peer.writer.drain(), self.io_timeout)
        return len(frame)

    def _damage(self, dst_id: str, frame: bytes) -> bytes:
        """Flip one body byte, leaving the header (and framing) intact."""
        if len(frame) <= codec.HEADER_SIZE:
            return frame
        buffer = bytearray(frame)
        index = self.plane.randrange(self.node_id, dst_id,
                                     codec.HEADER_SIZE, len(buffer))
        buffer[index] ^= 0xFF
        return bytes(buffer)

    async def _throttle(self, dst_id: str, size: int, bps: float) -> None:
        """Serialise this link's bytes at ``bps`` (token-bucket style)."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        start = max(now, self._throttle_free.get(dst_id, now))
        self._throttle_free[dst_id] = start + size / bps
        wait = start - now
        if wait > 0:
            self.metrics.incr("chaos_throttled_frames")
            await asyncio.sleep(wait)


__all__ = [
    "HEALTHY",
    "ChaosConnectionPool",
    "FaultPlane",
    "FramePlan",
    "LinkFaults",
]

"""A :class:`LocalCluster` whose every link answers to a fault plane.

:class:`ChaosCluster` swaps the plain connection pool for
:class:`~repro.chaos.faults.ChaosConnectionPool` (one shared
:class:`~repro.chaos.faults.FaultPlane`, seeded from the deployment
spec) and adds the node-lifecycle conveniences scenarios need: scripted
crash/restart schedules in the :class:`~repro.sim.failures.ScheduledFault`
vocabulary, partition helpers, and polling waits for detection and
recovery conditions.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable

from repro.chaos.faults import ChaosConnectionPool, FaultPlane, LinkFaults
from repro.net.deploy import LocalCluster, NetDeploymentSpec
from repro.sim.failures import ScheduledFault


class ChaosCluster(LocalCluster):
    """A localhost deployment with a seeded fault plane on every link."""

    def __init__(self, spec: NetDeploymentSpec,
                 loop: asyncio.AbstractEventLoop) -> None:
        # The plane must exist before _build() creates the pools.
        self.plane = FaultPlane(seed=spec.seed)
        self._fault_tasks: list["asyncio.Task[None]"] = []
        super().__init__(spec, loop)

    def _make_pool(self, node_id: str) -> ChaosConnectionPool:
        return ChaosConnectionPool(
            node_id, self.peers, self.metrics,
            rng=self.scheduler.fork_rng(f"net:{node_id}"),
            plane=self.plane,
            retry=self.spec.retry,
            connect_timeout=self.spec.connect_timeout,
            io_timeout=self.spec.io_timeout,
            max_batch=self.spec.max_batch,
            breaker=self.spec.breaker)

    # -- link faults -------------------------------------------------------

    def set_link(self, src: str, dst: str, faults: LinkFaults,
                 symmetric: bool = False) -> None:
        self.plane.set_link(src, dst, faults, symmetric=symmetric)

    def set_default_faults(self, faults: LinkFaults) -> None:
        self.plane.set_default(faults)

    def partition(self, a: str, b: str) -> None:
        """Cut both directions between two nodes."""
        self.plane.partition(a, b)

    def heal(self, a: str, b: str) -> None:
        self.plane.heal(a, b)

    def heal_all(self) -> None:
        self.plane.heal_all()

    # -- scripted node lifecycle faults ------------------------------------

    def schedule(self, script: Iterable[ScheduledFault]) -> None:
        """Run a crash/restart script against live nodes, in real time.

        Fault times are seconds from now.  The spawned tasks are awaited
        by :meth:`wait_faults` (and cancelled by :meth:`aclose`).
        """
        for fault in script:
            self.node(fault.node_id)  # fail fast on typos
            task = self._loop.create_task(
                self._run_fault(fault),
                name=f"chaos-fault:{fault.node_id}@{fault.at}")
            self._fault_tasks.append(task)

    async def _run_fault(self, fault: ScheduledFault) -> None:
        await asyncio.sleep(fault.at)
        await self.crash_node(fault.node_id)
        if fault.duration is not None:
            await asyncio.sleep(fault.duration)
            await self.restart_node(fault.node_id)

    async def wait_faults(self) -> None:
        """Block until every scheduled fault has fully played out."""
        if self._fault_tasks:
            await asyncio.gather(*self._fault_tasks)

    # -- condition polling -------------------------------------------------

    async def wait_for(self, condition: Callable[[], bool], timeout: float,
                       what: str = "condition",
                       poll: float = 0.02) -> float:
        """Poll until ``condition()`` holds; returns seconds waited.

        Raises :class:`TimeoutError` naming ``what`` -- scenario checks
        use the wait itself as the liveness assertion.
        """
        start = self._loop.time()
        deadline = start + timeout
        while not condition():
            if self._loop.time() > deadline:
                raise TimeoutError(
                    f"{what} did not hold within {timeout:.1f}s")
            await asyncio.sleep(poll)
        return self._loop.time() - start

    async def aclose(self) -> None:
        # Take the task list before awaiting: a concurrent aclose (or a
        # fault script appending) must not see half-drained state.
        tasks, self._fault_tasks = self._fault_tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await super().aclose()


async def launch_chaos(spec: NetDeploymentSpec | None = None,
                       settle: float = 1.0,
                       **spec_kwargs: Any) -> ChaosCluster:
    """Convenience: :meth:`ChaosCluster.launch` with precise typing."""
    cluster = await ChaosCluster.launch(spec, settle=settle, **spec_kwargs)
    assert isinstance(cluster, ChaosCluster)
    return cluster


__all__ = ["ChaosCluster", "launch_chaos"]

"""Reliable totally-ordered broadcast among the trusted master set.

Section 3 of the paper: "Our algorithm requires the masters to be fully
connected to each other through secure communication links, and implement
a reliable, total-ordering, broadcast protocol that can tolerate benign
(non-malicious) server failures.  The broadcast protocol itself is outside
the scope of this paper; a good choice could be for example the protocol
described in [8]."

[8] is Kaashoek et al.'s sequencer-based protocol, which this package
implements:

* one member acts as *sequencer* and assigns a global sequence number to
  every broadcast request;
* members deliver strictly in sequence order, buffering out-of-order
  arrivals and requesting retransmission of gaps;
* requests unacknowledged by an ordering are retransmitted;
* if the sequencer crashes, surviving members detect the silence via
  missed heartbeats and deterministically promote the next member in rank
  order, who resumes numbering after the highest sequence it has seen.

The engine (:class:`~repro.broadcast.totalorder.TotalOrderBroadcast`) is
transport-agnostic: the master server embeds one and routes envelope
messages into it.
"""

from repro.broadcast.totalorder import (
    BroadcastEnvelope,
    TotalOrderBroadcast,
)

__all__ = ["TotalOrderBroadcast", "BroadcastEnvelope"]

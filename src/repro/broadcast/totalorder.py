"""Sequencer-based total-order broadcast engine.

One :class:`TotalOrderBroadcast` instance lives inside each member (in
this system: each trusted server).  The host object supplies transport
primitives -- ``send``/``after``/``now``/``node_id`` -- which
:class:`repro.sim.network.Node` already provides, so a master can pass
itself as the transport.

Message flow::

    member --request--> sequencer --order--> all members

Delivery is in strict global-sequence order.  Recovery mechanisms for
benign faults:

* *request retransmission*: a member that has not seen its request ordered
  within ``request_timeout`` re-sends it (requests are identified by
  ``(origin, local_seq)``, so ordering duplicates is prevented by a
  dedup table at the sequencer).
* *gap repair*: a member receiving sequence ``n + k`` while expecting
  ``n`` asks the sequencer to retransmit the missing range; heartbeats
  carry the sequencer's high-water mark so silent gaps are also found.
* *view change with epochs*: the sequencer emits heartbeats stamped with
  an epoch number.  A member missing ``suspect_after`` seconds of
  heartbeats deposes the sequencer, promotes the next member in rank
  order and bumps the epoch.  The promoted leader gathers history above
  its own high-water mark from the surviving members (``sync`` messages)
  before assigning new numbers, so sequence numbers are never reused.
  A deposed leader that recovers learns of the newer epoch from the
  first heartbeat it sees and rejoins as a follower.

This is the structure of the Kaashoek et al. protocol the paper cites as
[8], restricted to benign (non-Byzantine) failures exactly as Section 3
assumes for the master set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol


class Transport(Protocol):
    """What the engine needs from its host node."""

    node_id: str

    def send(self, dst_id: str, message: Any, size_bytes: int = 256) -> None: ...

    def after(self, delay: float, callback: Callable[..., None],
              *args: Any) -> Any: ...

    @property
    def now(self) -> float: ...


@dataclass(frozen=True)
class BroadcastEnvelope:
    """Wrapper for every broadcast-protocol message on the wire.

    ``kind`` is one of: request, order, nack, heartbeat, state, sync.
    """

    kind: str
    origin: str = ""
    local_seq: int = -1
    global_seq: int = -1
    payload: Any = None
    epoch: int = 0
    leader: str = ""
    have_seq: int = -1
    entries: tuple = ()


#: Marker keys for engine-internal membership notices riding the total order.
_MEMBER_DOWN_KEY = "__tob_member_down__"
_MEMBER_UP_KEY = "__tob_member_up__"


@dataclass
class _PendingRequest:
    local_seq: int
    payload: Any
    submitted_at: float
    ordered: bool = False


class TotalOrderBroadcast:
    """One member's state machine for the sequencer broadcast protocol."""

    def __init__(
        self,
        transport: Transport,
        members: list[str],
        on_deliver: Callable[[int, str, Any], None],
        request_timeout: float = 1.0,
        heartbeat_interval: float = 0.25,
        suspect_after: float = 1.5,
        on_member_removed: Callable[[str], None] | None = None,
        on_member_readmitted: Callable[[str], None] | None = None,
    ) -> None:
        if transport.node_id not in members:
            raise ValueError(
                f"{transport.node_id!r} is not in the member list {members}"
            )
        self.transport = transport
        self.on_deliver = on_deliver
        self.on_member_removed = on_member_removed
        self.on_member_readmitted = on_member_readmitted
        self.ranked_members = sorted(members)
        self.alive_view = list(self.ranked_members)
        self.request_timeout = request_timeout
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = suspect_after

        self.epoch = 0
        #: Minimum members (including self) for leadership: a leader that
        #: cannot reach a majority abdicates, and a candidate without a
        #: majority view never assumes -- otherwise a partitioned
        #: minority could elect itself, order conflicting writes and sign
        #: stale trust, then hijack the epoch on heal.
        self.majority = len(self.ranked_members) // 2 + 1
        self._leader_id = self.ranked_members[0]
        self._next_local_seq = 0
        self._pending: dict[int, _PendingRequest] = {}
        self._delivered_up_to = -1  # highest contiguously delivered seq
        self._buffer: dict[int, tuple[str, Any]] = {}
        self._history: dict[int, tuple[str, Any]] = {}  # every order seen
        self._ordered_keys: set[tuple[str, int]] = set()  # sequencer dedup
        self._next_global_seq = 0  # sequencer-side counter
        self._last_heartbeat_at = 0.0
        #: Highest global sequence the leader has advertised (heartbeats).
        self._leader_have_seq = -1
        #: Leader-side liveness: member -> time of its last heartbeat ack.
        self._last_ack: dict[str, float] = {}
        #: When this engine last (re)started; suspicion is suppressed for
        #: one suspect_after window afterwards so a recovered node cannot
        #: misjudge peers from pre-crash timestamps.
        self._resumed_at = 0.0
        self._started = False
        self._stopped = False
        self.view_changes = 0
        self.delivered_count = 0

    # -- public API -----------------------------------------------------

    @property
    def sequencer_id(self) -> str:
        """The member this node currently believes to be the sequencer."""
        return self._leader_id

    @property
    def is_sequencer(self) -> bool:
        return self._leader_id == self.transport.node_id

    def start(self) -> None:
        """Begin heartbeat emission/monitoring.  Call once at deployment."""
        self._started = True
        self._last_heartbeat_at = self.transport.now
        self._resumed_at = self.transport.now
        self._last_ack.clear()
        self._tick()

    def stop(self) -> None:
        """Freeze the engine (host crashed or shut down)."""
        self._stopped = True

    def is_caught_up(self) -> bool:
        """Has this member delivered everything the leader advertised?

        False for a follower that is still repairing a gap -- e.g. a
        freshly recovered node whose local state is behind the group.
        Hosts use this to avoid serving *trusted* answers (double-checks,
        keep-alive stamps) from stale state.  The leader itself is always
        caught up by definition; a follower that has not heard a
        heartbeat yet conservatively reports False after recovery.
        """
        if not self._leader_id:
            return False  # leaderless (minority partition): trust nothing
        if self.is_sequencer:
            return True
        return self._delivered_up_to >= self._leader_have_seq

    def announce_recovery(self) -> None:
        """Rejoin after a benign crash: request catch-up from the leader.

        The nack carries our delivered-up-to mark; the sequencer re-admits
        us and retransmits what we missed.  If a newer epoch exists we
        learn it from the next heartbeat.
        """
        self._stopped = False
        self._last_heartbeat_at = self.transport.now
        self._resumed_at = self.transport.now
        self._last_ack.clear()
        if self.is_sequencer:
            # Leadership does not survive a crash: the group may have
            # elected someone else while we were down, and ordering on a
            # stale epoch would fork the sequence.  Rejoin leaderless and
            # let the quorum path re-establish a regime (adopting the
            # live leader's heartbeats, or re-claiming with a fresh epoch
            # if we are still the lowest-ranked of a reachable majority).
            self._leader_id = ""
        elif self._leader_id:
            self.transport.send(self._leader_id, BroadcastEnvelope(
                kind="nack", have_seq=self._delivered_up_to,
                epoch=self.epoch))
        self._tick()

    def broadcast(self, payload: Any) -> int:
        """Submit ``payload`` for total ordering; returns the local seq.

        Delivery (including back to the submitter) happens via
        ``on_deliver`` once the sequencer orders the request.
        """
        local_seq = self._next_local_seq
        self._next_local_seq += 1
        pending = _PendingRequest(local_seq=local_seq, payload=payload,
                                  submitted_at=self.transport.now)
        self._pending[local_seq] = pending
        self._submit(pending)
        self.transport.after(self.request_timeout, self._check_request,
                             local_seq)
        return local_seq

    def handle_message(self, src_id: str, envelope: BroadcastEnvelope) -> None:
        """Route one broadcast-protocol message into the engine."""
        if self._stopped:
            return
        if envelope.kind == "request":
            self._handle_request(envelope)
        elif envelope.kind == "order":
            self._handle_order(envelope)
        elif envelope.kind == "nack":
            self._handle_nack(src_id, envelope)
        elif envelope.kind == "heartbeat":
            self._handle_heartbeat(src_id, envelope)
        elif envelope.kind == "ack":
            self._handle_ack(src_id, envelope)
        elif envelope.kind == "state":
            self._handle_state(src_id, envelope)
        elif envelope.kind == "sync":
            self._handle_sync(src_id, envelope)
        else:
            raise ValueError(f"unknown broadcast envelope kind "
                             f"{envelope.kind!r}")

    def note_member_crashed(self, member_id: str) -> None:
        """External crash notice (e.g. from the membership layer)."""
        self._depose_or_remove(member_id)

    # -- submission / ordering ---------------------------------------------

    def _submit(self, pending: _PendingRequest) -> None:
        envelope = BroadcastEnvelope(
            kind="request",
            origin=self.transport.node_id,
            local_seq=pending.local_seq,
            payload=pending.payload,
        )
        if self.is_sequencer:
            self._handle_request(envelope)
        elif self._leader_id:
            self.transport.send(self._leader_id, envelope)
        # Leaderless: hold; the per-request retransmission timer retries
        # once a regime is re-established.

    def _check_request(self, local_seq: int) -> None:
        """Retransmit a request the sequencer has not ordered in time."""
        pending = self._pending.get(local_seq)
        if pending is None or pending.ordered or self._stopped:
            return
        self._submit(pending)
        self.transport.after(self.request_timeout, self._check_request,
                             local_seq)

    def _handle_request(self, envelope: BroadcastEnvelope) -> None:
        if not self.is_sequencer:
            # Stale sender view; forward to whoever we believe leads now
            # (drop if leaderless -- the origin's timer will retry).
            if self._leader_id:
                self.transport.send(self._leader_id, envelope)
            return
        self._readmit(envelope.origin)
        key = (envelope.origin, envelope.local_seq)
        if key in self._ordered_keys:
            return  # duplicate retransmission; already ordered
        self._ordered_keys.add(key)
        global_seq = self._next_global_seq
        self._next_global_seq += 1
        stamped = {"local_seq": envelope.local_seq, "data": envelope.payload}
        self._history[global_seq] = (envelope.origin, stamped)
        order = BroadcastEnvelope(
            kind="order",
            origin=envelope.origin,
            local_seq=envelope.local_seq,
            global_seq=global_seq,
            payload=stamped,
            epoch=self.epoch,
        )
        for member in self.alive_view:
            if member == self.transport.node_id:
                self._handle_order(order)
            else:
                self.transport.send(member, order)

    def _handle_order(self, envelope: BroadcastEnvelope) -> None:
        if envelope.epoch < self.epoch:
            # In-flight ordering from a deposed leader: refuse.  Whatever
            # the old regime agreed on is already in the survivors'
            # history and will reach us via the new leader's repair path.
            return
        seq = envelope.global_seq
        if seq <= self._delivered_up_to:
            return  # duplicate
        self._buffer[seq] = (envelope.origin, envelope.payload)
        self._history[seq] = (envelope.origin, envelope.payload)
        if self.is_sequencer:
            self._ordered_keys.add(
                (envelope.origin, envelope.payload["local_seq"]))
        self._drain_buffer()
        # Gap detection: something beyond the next expected seq is buffered.
        if self._buffer and min(self._buffer) > self._delivered_up_to + 1:
            self._send_nack()

    def _send_nack(self) -> None:
        nack = BroadcastEnvelope(kind="nack", have_seq=self._delivered_up_to,
                                 epoch=self.epoch)
        if self.is_sequencer:
            self._handle_nack(self.transport.node_id, nack)
        elif self._leader_id:
            self.transport.send(self._leader_id, nack)

    def _drain_buffer(self) -> None:
        while self._delivered_up_to + 1 in self._buffer:
            seq = self._delivered_up_to + 1
            origin, stamped = self._buffer.pop(seq)
            self._delivered_up_to = seq
            self.delivered_count += 1
            if origin == self.transport.node_id:
                pending = self._pending.get(stamped["local_seq"])
                if pending is not None:
                    pending.ordered = True
            data = stamped["data"]
            if isinstance(data, dict) and _MEMBER_DOWN_KEY in data:
                # Engine-internal membership notice, delivered in total
                # order so every member reacts at the same stream point.
                self._member_down_delivered(data[_MEMBER_DOWN_KEY])
                continue
            if isinstance(data, dict) and _MEMBER_UP_KEY in data:
                self._member_up_delivered(data[_MEMBER_UP_KEY])
                continue
            self.on_deliver(seq, origin, data)

    def _member_down_delivered(self, member_id: str) -> None:
        if member_id == self.transport.node_id:
            return  # we are evidently alive; rejoin via the next ack
        if member_id in self.alive_view:
            self.alive_view.remove(member_id)
        if self.on_member_removed is not None:
            self.on_member_removed(member_id)

    def _member_up_delivered(self, member_id: str) -> None:
        if member_id == self.transport.node_id:
            return
        if member_id not in self.alive_view \
                and member_id in self.ranked_members:
            self.alive_view.append(member_id)
            self.alive_view.sort()
            self._last_ack[member_id] = self.transport.now
        if self.on_member_readmitted is not None:
            self.on_member_readmitted(member_id)

    def _handle_nack(self, src_id: str, envelope: BroadcastEnvelope) -> None:
        if not self.is_sequencer:
            return
        self._readmit(src_id)
        for seq in range(envelope.have_seq + 1, self._next_global_seq):
            if seq not in self._history:
                continue
            origin, stamped = self._history[seq]
            order = BroadcastEnvelope(kind="order", origin=origin,
                                      local_seq=stamped["local_seq"],
                                      global_seq=seq, payload=stamped,
                                      epoch=self.epoch)
            if src_id == self.transport.node_id:
                self._handle_order(order)
            else:
                self.transport.send(src_id, order)

    # -- heartbeats / view changes -------------------------------------------

    def _tick(self) -> None:
        if self._stopped or not self._started:
            return
        now = self.transport.now
        if self.is_sequencer:
            heartbeat = BroadcastEnvelope(kind="heartbeat",
                                          have_seq=self._next_global_seq - 1,
                                          epoch=self.epoch)
            for member in self.ranked_members:
                if member != self.transport.node_id:
                    self.transport.send(member, heartbeat)
            self._last_heartbeat_at = now
            if now - self._resumed_at > self.suspect_after:
                # Quorum check: a leader that cannot reach a majority of
                # the group (itself included) must abdicate rather than
                # keep ordering in a minority partition.
                reachable = 1 + sum(
                    1 for member, last in self._last_ack.items()
                    if member != self.transport.node_id
                    and now - last <= self.suspect_after)
                if reachable < self.majority:
                    self._leader_id = ""
                    self.transport.after(self.heartbeat_interval,
                                         self._tick)
                    return
                # Follower liveness: a member whose acks stopped is
                # suspected crashed; announce it through the total order
                # so every member learns at the same stream point.
                for member in list(self.alive_view):
                    if member == self.transport.node_id:
                        continue
                    last = self._last_ack.setdefault(member, now)
                    if now - last > self.suspect_after:
                        self.alive_view.remove(member)
                        self.broadcast({_MEMBER_DOWN_KEY: member})
        elif not self._leader_id:
            # Leaderless (abdicated, or candidate without quorum): probe
            # the whole group so healing re-establishes a regime.
            probe = BroadcastEnvelope(kind="state", epoch=self.epoch,
                                      leader="",
                                      have_seq=self._delivered_up_to)
            for member in self.ranked_members:
                if member != self.transport.node_id:
                    self.transport.send(member, probe)
            self._try_claim_leadership()
        elif now - self._last_heartbeat_at > self.suspect_after:
            self._depose_or_remove(self._leader_id)
        self.transport.after(self.heartbeat_interval, self._tick)

    def _reachable_count(self) -> int:
        """Members (incl. self) heard from within the suspicion window."""
        now = self.transport.now
        return 1 + sum(
            1 for member, last in self._last_ack.items()
            if member != self.transport.node_id
            and now - last <= self.suspect_after)

    def _try_claim_leadership(self) -> None:
        """While leaderless: re-establish a regime once peers respond.

        Peers answering our probes refresh ``_last_ack``; with a majority
        reachable the lowest-ranked reachable member becomes leader (us,
        with an epoch bump, if that is us; otherwise we ask it).
        """
        now = self.transport.now
        reachable = sorted(
            [self.transport.node_id]
            + [member for member, last in self._last_ack.items()
               if member != self.transport.node_id
               and now - last <= self.suspect_after])
        if len(reachable) < self.majority:
            return
        if reachable[0] == self.transport.node_id:
            self.epoch += 1
            self._leader_id = self.transport.node_id
            self._assume_leadership()
        else:
            self._leader_id = reachable[0]
            self._last_heartbeat_at = now
            self.transport.send(self._leader_id, BroadcastEnvelope(
                kind="state", epoch=self.epoch, leader=self._leader_id,
                have_seq=self._delivered_up_to))

    def _handle_ack(self, src_id: str, envelope: BroadcastEnvelope) -> None:
        if not self.is_sequencer:
            return
        self._readmit(src_id)
        self._last_ack[src_id] = self.transport.now

    def _handle_heartbeat(self, src_id: str,
                          envelope: BroadcastEnvelope) -> None:
        if envelope.epoch < self.epoch:
            # A stale leader (or one we outpaced while partitioned);
            # tell it about our epoch so it steps down / catches up.
            self.transport.send(src_id, BroadcastEnvelope(
                kind="state", epoch=self.epoch, leader=self._leader_id,
                have_seq=self._delivered_up_to))
            return
        if envelope.epoch > self.epoch or not self._leader_id:
            # We missed a view change (crashed or partitioned): adopt the
            # live regime.
            self._adopt_leader(envelope.leader or src_id,
                               max(envelope.epoch, self.epoch))
        if src_id != self._leader_id:
            return
        self._last_heartbeat_at = self.transport.now
        self._leader_have_seq = max(self._leader_have_seq,
                                    envelope.have_seq)
        # Ack so the leader's follower-liveness detector sees us alive.
        self.transport.send(self._leader_id, BroadcastEnvelope(
            kind="ack", epoch=self.epoch,
            have_seq=self._delivered_up_to))
        # Re-request repair whenever we are behind the leader's high-water
        # mark OR a buffered order is stranded behind a gap (the original
        # gap nack may itself have been lost).
        if envelope.have_seq > self._delivered_up_to or (
                self._buffer
                and min(self._buffer) > self._delivered_up_to + 1):
            self._send_nack()

    def _adopt_leader(self, leader_id: str, epoch: int) -> None:
        self.epoch = epoch
        self._leader_id = leader_id
        self._last_heartbeat_at = self.transport.now
        self._readmit(leader_id)
        if self.is_sequencer:
            # We just learned that a newer epoch elected *us* (a follower
            # deposed the old leader and we are next in rank).
            self._assume_leadership()
            return
        # Re-submit anything the old leader never ordered.
        for pending in self._pending.values():
            if not pending.ordered:
                self._submit(pending)

    def _depose_or_remove(self, member_id: str) -> None:
        """Remove ``member_id`` from the view; run election if it led."""
        if member_id == self.transport.node_id:
            return
        if member_id in self.alive_view:
            self.alive_view.remove(member_id)
            if self.on_member_removed is not None:
                self.on_member_removed(member_id)
        if member_id != self._leader_id:
            return
        # Elect the next alive member in rank order -- but only claim
        # leadership ourselves with a majority view (minority partitions
        # must freeze, not fork).
        self.view_changes += 1
        self.epoch += 1
        candidates = [m for m in self.alive_view]
        new_leader = candidates[0] if candidates else self.transport.node_id
        self._last_heartbeat_at = self.transport.now
        if new_leader == self.transport.node_id:
            if len(self.alive_view) >= self.majority:
                self._leader_id = new_leader
                self._assume_leadership()
            else:
                self._leader_id = ""  # leaderless; probe until heal
            return
        self._leader_id = new_leader
        # Tell the new leader it has been elected (it may not have
        # noticed the crash itself yet), then re-submit unordered
        # requests to it.
        self.transport.send(self._leader_id, BroadcastEnvelope(
            kind="state", epoch=self.epoch, leader=self._leader_id,
            have_seq=self._delivered_up_to))
        for pending in self._pending.values():
            if not pending.ordered:
                self._submit(pending)

    def _assume_leadership(self) -> None:
        """Promoted to sequencer: sync history, then resume numbering."""
        highest = max([self._delivered_up_to] + list(self._history)
                      + list(self._buffer))
        self._next_global_seq = max(self._next_global_seq, highest + 1)
        # Rebuild the dedup table from history so retransmitted requests
        # the old leader already ordered are not ordered twice.
        for _seq, (origin, stamped) in self._history.items():
            self._ordered_keys.add((origin, stamped["local_seq"]))
        state = BroadcastEnvelope(kind="state", epoch=self.epoch,
                                  leader=self.transport.node_id,
                                  have_seq=self._next_global_seq - 1)
        for member in self.ranked_members:
            if member != self.transport.node_id:
                self.transport.send(member, state)
        for pending in self._pending.values():
            if not pending.ordered:
                self._submit(pending)

    def _handle_state(self, src_id: str, envelope: BroadcastEnvelope) -> None:
        # State traffic doubles as liveness evidence for quorum counting.
        self._last_ack[src_id] = self.transport.now
        if envelope.epoch > self.epoch:
            if envelope.leader:
                self._adopt_leader(envelope.leader, envelope.epoch)
            else:
                # A leaderless node surfaced a higher epoch (failed
                # elections in a minority partition).  Raft-style: step
                # down to that epoch; re-election needs a majority.
                self.epoch = envelope.epoch
                self._leader_id = ""
                return
        elif envelope.epoch < self.epoch:
            # Inform the stale sender of the current regime.
            self.transport.send(src_id, BroadcastEnvelope(
                kind="state", epoch=self.epoch, leader=self._leader_id,
                have_seq=self._delivered_up_to))
            return
        elif not self._leader_id and envelope.leader:
            # Equal epoch, we are leaderless, the sender names a live
            # regime: adopt it.
            self._adopt_leader(envelope.leader, envelope.epoch)
        elif self._leader_id and not envelope.leader:
            # Equal epoch, sender is leaderless and probing: name our
            # regime.
            self.transport.send(src_id, BroadcastEnvelope(
                kind="state", epoch=self.epoch, leader=self._leader_id,
                have_seq=self._delivered_up_to))
            return
        # Same epoch: if the sender (the leader) is missing orders we hold,
        # ship them so sequence numbers are never reused.
        if src_id == self._leader_id and not self.is_sequencer:
            missing = [
                (seq, self._history[seq][0], self._history[seq][1])
                for seq in sorted(self._history)
                if seq > envelope.have_seq
            ]
            if missing:
                self.transport.send(src_id, BroadcastEnvelope(
                    kind="sync", epoch=self.epoch, entries=tuple(missing)))
            # Also pull anything the new leader has that we do not.
            if envelope.have_seq > self._delivered_up_to:
                self._send_nack()

    def _handle_sync(self, src_id: str, envelope: BroadcastEnvelope) -> None:
        if not self.is_sequencer or envelope.epoch != self.epoch:
            return
        advanced = False
        for seq, origin, stamped in envelope.entries:
            if seq not in self._history:
                self._history[seq] = (origin, stamped)
                self._ordered_keys.add((origin, stamped["local_seq"]))
                advanced = True
            order = BroadcastEnvelope(kind="order", origin=origin,
                                      local_seq=stamped["local_seq"],
                                      global_seq=seq, payload=stamped,
                                      epoch=self.epoch)
            self._handle_order(order)
        if advanced:
            highest = max(self._history)
            self._next_global_seq = max(self._next_global_seq, highest + 1)
            # Re-propagate so every member converges on the merged history.
            for member in self.alive_view:
                if member == self.transport.node_id:
                    continue
                for seq in sorted(self._history):
                    origin, stamped = self._history[seq]
                    self.transport.send(member, BroadcastEnvelope(
                        kind="order", origin=origin,
                        local_seq=stamped["local_seq"], global_seq=seq,
                        payload=stamped, epoch=self.epoch))

    def _readmit(self, member_id: str) -> None:
        """Re-admit a recovered member to the delivery view (as follower)."""
        if member_id in self.alive_view or member_id == self.transport.node_id:
            return
        if member_id not in self.ranked_members:
            return
        self.alive_view.append(member_id)
        self.alive_view.sort()
        self._last_ack[member_id] = self.transport.now
        if self.on_member_readmitted is not None:
            self.on_member_readmitted(member_id)
        if self.is_sequencer:
            # Tell the whole group, in total order, that the member is
            # back (followers cannot see the rejoin nack themselves).
            self.broadcast({_MEMBER_UP_KEY: member_id})

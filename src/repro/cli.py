"""Command-line front-end: build and run deployments without writing code.

Two subcommands::

    repro-sim run   [topology/protocol/workload/adversary flags]
    repro-sim demo  [--scenario cdn|byzantine|quorum]

``run`` builds a deployment, drives a random read/write workload and
prints the run summary (counters, accepted-read classification, auditor
stats) as text or JSON.  ``demo`` runs a canned scenario with a
compromised replica and narrates what the protocol did about it.

Adversaries are specified as ``INDEX:KIND[:PARAM]``, e.g.::

    --adversary 0:always-lie --adversary 3:probabilistic:0.2
    --adversary 1:colluding:7 --adversary 2:unresponsive:0.5

Exit code is 0 when the run completed and every wrongly accepted read
was detected by the audit, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.content.filesystem import FSGrep, FSRead, MemoryFileSystem
from repro.content.kvstore import KVAggregate, KVGet, KVPut, KeyValueStore
from repro.content.minidb import DBAggregate, DBSelect, MiniDB
from repro.core.adversary import (
    AdversaryStrategy,
    AlwaysLie,
    BrokenSignature,
    Colluding,
    ProbabilisticLie,
    Unresponsive,
)
from repro.core.config import ProtocolConfig
from repro.core.system import DeploymentSpec, ReplicationSystem
from repro.crypto.hashing import sha1_hex
from repro.sim.failures import parse_crash_spec
from repro.workloads import (
    catalog_dataset,
    filesystem_dataset,
    publications_dataset,
)

_ADVERSARY_KINDS = ("always-lie", "probabilistic", "colluding",
                    "unresponsive", "broken-signature")


def parse_adversary(spec: str, rng: random.Random) -> tuple[int, AdversaryStrategy]:
    """Parse ``INDEX:KIND[:PARAM]`` into (slave index, strategy)."""
    parts = spec.split(":")
    if len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"adversary spec {spec!r} must look like INDEX:KIND[:PARAM]")
    try:
        index = int(parts[0])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"adversary index must be an integer, got {parts[0]!r}")
    kind = parts[1]
    param = parts[2] if len(parts) > 2 else None
    if kind == "always-lie":
        return index, AlwaysLie(rng=rng)
    if kind == "probabilistic":
        return index, ProbabilisticLie(float(param or 0.2), rng=rng)
    if kind == "colluding":
        return index, Colluding(group_seed=int(param or 1))
    if kind == "unresponsive":
        return index, Unresponsive(float(param or 1.0), rng=rng)
    if kind == "broken-signature":
        return index, BrokenSignature(float(param or 1.0), rng=rng)
    raise argparse.ArgumentTypeError(
        f"unknown adversary kind {kind!r}; expected one of "
        f"{_ADVERSARY_KINDS}")


def _store_factory(content: str, size: int, seed: int):
    rng = random.Random(seed)
    if content == "kv":
        items = {f"k{i:04d}": i for i in range(size)}
        return lambda: KeyValueStore(dict(items))
    if content == "catalog":
        items = catalog_dataset(size, rng)
        return lambda: KeyValueStore(dict(items))
    if content == "fs":
        files = filesystem_dataset(size, rng)
        return lambda: MemoryFileSystem(dict(files))
    if content == "db":
        ops = publications_dataset(size, rng)

        def factory() -> MiniDB:
            db = MiniDB()
            for op in ops:
                db.apply_write(op)
            return db

        return factory
    raise argparse.ArgumentTypeError(f"unknown content type {content!r}")


def _sample_read(content: str, size: int, rng: random.Random) -> Any:
    if content in ("kv",):
        return KVGet(key=f"k{rng.randrange(size):04d}")
    if content == "catalog":
        if rng.random() < 0.1:
            return KVAggregate(prefix="price/", func="avg")
        return KVGet(key=f"price/sku{rng.randrange(size):06d}")
    if content == "fs":
        if rng.random() < 0.2:
            return FSGrep(pattern="TODO", path="/src")
        return FSRead(path=f"/src/alpha/file{0:05d}.txt")
    if content == "db":
        if rng.random() < 0.3:
            return DBAggregate(table="papers", func="count",
                               group_by=("venue",))
        return DBSelect(table="papers",
                        where=(("year", ">=", 1995 + rng.randrange(9)),),
                        columns=("id", "title"), order_by="id", limit=20)
    raise ValueError(content)


def _sample_write(content: str, size: int, counter: int,
                  rng: random.Random) -> Any:
    if content in ("kv", "catalog"):
        return KVPut(key=f"k{rng.randrange(size):04d}",
                     value=f"update-{counter}")
    if content == "fs":
        from repro.content.filesystem import FSWrite

        return FSWrite(path=f"/updates/u{counter:04d}.txt",
                       content=f"TODO update {counter}")
    if content == "db":
        from repro.content.minidb import DBInsert

        return DBInsert.from_dicts("papers", [{
            "id": 10_000 + counter, "title": f"new paper {counter}",
            "year": 2003, "venue": "hotos",
            "author_id": rng.randrange(max(1, size // 4))}])
    raise ValueError(content)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Secure data replication over untrusted hosts "
                    "(HotOS 2003) -- simulation driver")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a custom deployment + workload")
    run.add_argument("--masters", type=int, default=3)
    run.add_argument("--slaves-per-master", type=int, default=4)
    run.add_argument("--clients", type=int, default=8)
    run.add_argument("--auditors", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--content", choices=("kv", "catalog", "fs", "db"),
                     default="kv")
    run.add_argument("--content-size", type=int, default=200,
                     help="items/files/rows in the initial content")
    run.add_argument("--reads", type=int, default=500)
    run.add_argument("--read-rate", type=float, default=20.0,
                     help="offered reads per second")
    run.add_argument("--write-every", type=int, default=0,
                     help="issue one write per N reads (0 = no writes)")
    run.add_argument("--double-check-probability", "-p", type=float,
                     default=0.05)
    run.add_argument("--max-latency", type=float, default=5.0)
    run.add_argument("--keepalive-interval", type=float, default=1.0)
    run.add_argument("--audit-fraction", type=float, default=1.0)
    run.add_argument("--read-quorum", type=int, default=1)
    run.add_argument("--adversary", action="append", default=[],
                     metavar="INDEX:KIND[:PARAM]",
                     help=f"kinds: {', '.join(_ADVERSARY_KINDS)}")
    run.add_argument("--crash", action="append", default=[],
                     metavar="NODE@T[,DURATION]",
                     help="benign crash schedule, e.g. master-01@20,10 "
                          "(crash 20s into the workload, recover after "
                          "10s; omit the duration to stay down)")
    run.add_argument("--churn-mtbf", type=float, default=0.0,
                     metavar="SECONDS",
                     help="drive every trusted server through an "
                          "exponential crash process with this mean time "
                          "between failures (requires --churn-mttr)")
    run.add_argument("--churn-mttr", type=float, default=0.0,
                     metavar="SECONDS",
                     help="mean time to repair for --churn-mtbf")
    run.add_argument("--json", action="store_true",
                     help="print the summary as JSON")
    run.add_argument("--report", metavar="FILE",
                     help="also write a markdown run report to FILE")

    demo = sub.add_parser("demo", help="run a canned narrated scenario")
    demo.add_argument("--scenario", choices=("cdn", "byzantine", "quorum"),
                      default="cdn")
    demo.add_argument("--seed", type=int, default=7)

    net_demo = sub.add_parser(
        "net-demo",
        help="boot the protocol over real localhost sockets and run a "
             "write/read/audit cycle")
    net_demo.add_argument("--seed", type=int, default=0)
    net_demo.add_argument("--masters", type=int, default=2)
    net_demo.add_argument("--slaves-per-master", type=int, default=2)
    net_demo.add_argument("--clients", type=int, default=2)
    net_demo.add_argument("--settle", type=float, default=1.0,
                          help="seconds to let the topology hand-shake "
                               "before the first client op")

    shard_demo = sub.add_parser(
        "shard-demo",
        help="boot a multi-tenant sharded cluster over real sockets, "
             "spread writes across shards, move one shard online and "
             "print the JSON report (placement, rebalance timings, "
             "per-shard safety verdicts)")
    shard_demo.add_argument("--seed", type=int, default=0)
    shard_demo.add_argument("--shards", type=int, default=2)
    shard_demo.add_argument("--hosts", type=int, default=2)
    shard_demo.add_argument("--settle", type=float, default=1.0,
                            help="seconds to let the topology "
                                 "hand-shake before the first client op")

    chaos = sub.add_parser(
        "chaos",
        help="replay named fault scenarios over real sockets and check "
             "the Section 3.5 recovery obligations")
    chaos.add_argument("--scenario", action="append", default=[],
                       metavar="NAME",
                       help="scenario to run (repeatable; default: all)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--list", action="store_true",
                       help="list scenario names and exit")

    obs = sub.add_parser(
        "obs",
        help="boot a traced socket cluster with a lying slave, scrape "
             "spans over the admin plane and write exporter outputs plus "
             "a report checking the Section 3.4/3.5 invariants from "
             "spans alone")
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--masters", type=int, default=2)
    obs.add_argument("--slaves-per-master", type=int, default=2)
    obs.add_argument("--clients", type=int, default=2)
    obs.add_argument("--reads", type=int, default=12,
                     help="reads per client")
    obs.add_argument("--writes", type=int, default=3)
    obs.add_argument("--sample-rate", type=float, default=1.0)
    obs.add_argument("--out", default="obs-out", metavar="DIR",
                     help="directory for spans.jsonl, trace.json, "
                          "metrics.prom and report.json")
    obs.add_argument("--settle", type=float, default=1.0)

    lint = sub.add_parser(
        "lint",
        help="run protolint (the protocol-invariant linter) over the "
             "repository; extra arguments pass through, e.g. "
             "`repro-sim lint -- --format sarif src/`")
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to protolint (default: "
                           "lint src/ tools/ benchmarks/ examples/ of "
                           "the enclosing repository)")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    adversary_rng = random.Random(args.seed + 1)
    adversaries = dict(
        parse_adversary(spec, adversary_rng) for spec in args.adversary)
    protocol = ProtocolConfig(
        double_check_probability=args.double_check_probability,
        max_latency=args.max_latency,
        keepalive_interval=args.keepalive_interval,
        audit_fraction=args.audit_fraction,
        read_quorum=args.read_quorum,
    )
    spec = DeploymentSpec(
        num_masters=args.masters,
        slaves_per_master=args.slaves_per_master,
        num_clients=args.clients,
        num_auditors=args.auditors,
        seed=args.seed,
        protocol=protocol,
        store_factory=_store_factory(args.content, args.content_size,
                                     args.seed),
        adversaries=adversaries,
    )
    system = ReplicationSystem.build(spec)
    system.start()

    rng = random.Random(args.seed + 2)
    t = system.now
    writes = 0
    for i in range(args.reads):
        t += 1.0 / args.read_rate
        client = system.clients[i % args.clients]
        system.schedule_op(client, t,
                           _sample_read(args.content, args.content_size,
                                        rng))
        if args.write_every and (i + 1) % args.write_every == 0:
            writes += 1
            system.schedule_op(
                system.clients[0], t,
                _sample_write(args.content, args.content_size, writes,
                              rng))
    if (args.churn_mtbf > 0) != (args.churn_mttr > 0):
        raise SystemExit("--churn-mtbf and --churn-mttr go together")
    if args.crash:
        nodes = {node.node_id: node
                 for node in (*system.masters, *system.auditors,
                              *system.slaves)}
        try:
            system.failures.apply_script(
                [parse_crash_spec(spec) for spec in args.crash], nodes)
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"bad --crash schedule: {exc}")
    if args.churn_mtbf > 0:
        # Benign churn hits the trusted servers (the paper's crash-fault
        # set); Byzantine slave behaviour stays with --adversary.
        for node in (*system.masters, *system.auditors):
            system.failures.exponential_churn(
                node, args.churn_mtbf, args.churn_mttr, until=t)

    drain = 60.0 + writes * protocol.max_latency
    system.run_for(t - system.now + drain)

    summary = system.summary()
    summary["consistency_window_violations"] = len(
        system.check_consistency_window())
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
    else:
        _print_summary(summary)
    if getattr(args, "report", None):
        from repro.report import render_markdown_report

        with open(args.report, "w") as handle:
            handle.write(render_markdown_report(system))
        print(f"report written to {args.report}")
    wrong = summary["classification"]["accepted_wrong"]
    detections = summary["auditor"]["detections"]
    ok = (summary["consistency_window_violations"] == 0
          and detections >= wrong)
    return 0 if ok else 1


def _print_summary(summary: dict) -> None:
    counters = summary["counters"]
    classification = summary["classification"]

    def c(name: str) -> int:
        return int(counters.get(name, 0))

    print(f"simulated time          : {summary['time']:.1f} s")
    print(f"reads accepted          : {c('reads_accepted')}")
    print(f"reads failed            : {c('reads_failed')}")
    print(f"writes committed        : {c('writes_committed')}")
    print(f"double-checks served    : {c('double_checks_served')}")
    print(f"lies served             : {c('slave_lies_served')}")
    print(f"immediate detections    : {c('immediate_detections')}")
    print(f"audit detections        : {summary['auditor']['detections']}")
    print(f"slaves excluded         : {c('exclusions')}")
    print(f"wrong answers accepted  : {classification['accepted_wrong']} "
          f"of {classification['accepted_total']}")
    print(f"window violations       : "
          f"{summary['consistency_window_violations']}")
    print(f"auditor coverage        : "
          f"{summary['auditor']['pledges_audited']}/"
          f"{summary['auditor']['pledges_received']} pledges, "
          f"cache hit rate {summary['auditor']['cache_hit_rate']:.2f}")
    failures = summary.get("failures", {})
    if failures.get("crashes") or failures.get("recoveries"):
        print(f"benign failures         : {failures['crashes']} crashes, "
              f"{failures['recoveries']} recoveries")
        for event in failures["events"][:12]:
            print(f"    {event['at']:>8.1f}s  {event['kind']:<8} "
                  f"{event['node']}")
        if len(failures["events"]) > 12:
            print(f"    ... {len(failures['events']) - 12} more events")


def cmd_demo(args: argparse.Namespace) -> int:
    presets = {
        "cdn": dict(adversary=["2:probabilistic:0.3"], reads=400,
                    content="catalog", content_size=150,
                    double_check_probability=0.05, read_quorum=1),
        "byzantine": dict(adversary=["0:always-lie"], reads=200,
                          content="kv", content_size=100,
                          double_check_probability=0.2, read_quorum=1),
        "quorum": dict(adversary=["0:colluding:5", "1:colluding:5"],
                       reads=200, content="kv", content_size=100,
                       double_check_probability=0.0, read_quorum=2),
    }
    preset = presets[args.scenario]
    print(f"scenario: {args.scenario}  "
          f"(adversaries: {preset['adversary']})\n")
    namespace = build_parser().parse_args(
        ["run", "--seed", str(args.seed),
         "--content", preset["content"],
         "--content-size", str(preset["content_size"]),
         "--reads", str(preset["reads"]),
         "-p", str(preset["double_check_probability"]),
         "--read-quorum", str(preset["read_quorum"]),
         "--slaves-per-master", "3"]
        + [flag for spec in preset["adversary"]
           for flag in ("--adversary", spec)])
    return cmd_run(namespace)


def cmd_net_demo(args: argparse.Namespace) -> int:
    from repro.net.deploy import run_net_demo_sync

    summary = run_net_demo_sync(
        args.seed,
        num_masters=args.masters,
        slaves_per_master=args.slaves_per_master,
        num_clients=args.clients,
        settle=args.settle,
    )
    print(json.dumps(summary, indent=2, default=str))
    ok = (summary["write"]["status"] == "committed"
          and summary["write_denied"]["status"] in ("rejected", "failed")
          and summary["read"]["status"] == "accepted"
          and summary["sensitive_read"]["status"] == "accepted"
          and not summary["handler_errors"])
    return 0 if ok else 1


def cmd_shard_demo(args: argparse.Namespace) -> int:
    from repro.shard.deploy import run_shard_demo_sync

    report = run_shard_demo_sync(
        args.seed,
        num_shards=args.shards,
        num_hosts=args.hosts,
        settle=args.settle,
    )
    print(json.dumps(report, indent=2, default=str))
    total_keys = sum(len(shard["keys"])
                     for shard in report["shards"].values())
    safety_ok = all(check["passed"]
                    for checks in report["safety"].values()
                    for check in checks)
    ok = (report["reads_ok_before"] == total_keys
          and report["reads_ok_after"] == total_keys
          and safety_ok
          and not report["handler_errors"])
    return 0 if ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import SCENARIOS, run_scenario_sync

    if args.list:
        for name in sorted(SCENARIOS):
            print(name)
        return 0
    names = args.scenario or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s) {unknown}; "
                         f"known: {sorted(SCENARIOS)}")
    verdicts = [run_scenario_sync(name, args.seed) for name in names]
    print(json.dumps([verdict.to_json() for verdict in verdicts],
                     indent=2, default=str))
    failed = [v.scenario for v in verdicts if not v.passed]
    if failed:
        print(f"FAILED: {failed}", file=sys.stderr)
    return 0 if not failed else 1


def cmd_obs(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.net.deploy import (
        LocalCluster,
        NetDeploymentSpec,
        fast_protocol_config,
    )
    from repro.obs.admin import span_from_wire
    from repro.obs.analyze import run_report
    from repro.obs.export import chrome_trace, prometheus_text, spans_jsonl
    from repro.obs.spans import Span

    async def drive() -> tuple[list[Span], dict[str, Any], Any]:
        config = fast_protocol_config()
        # The lying pair sits under the master client-00 deterministically
        # homes to (the same hash rule the client uses), so the immediate-
        # discovery path of Section 3.5 is guaranteed to fire; the other
        # client never double-checks, exercising the audit path.
        liar_master = int(sha1_hex("client-00")[:4], 16) % args.masters
        liars = {args.slaves_per_master * liar_master + i: AlwaysLie()
                 for i in range(args.slaves_per_master)}
        spec = NetDeploymentSpec(
            num_masters=args.masters,
            slaves_per_master=args.slaves_per_master,
            num_clients=args.clients,
            seed=args.seed, protocol=config,
            adversaries=liars,
            client_double_check_overrides={0: 1.0},
            obs_enabled=True, obs_sample_rate=args.sample_rate)
        cluster = await LocalCluster.launch(spec, settle=args.settle)
        try:
            for i in range(args.writes):
                await cluster.write(cluster.clients[0],
                                    KVPut(key=f"k{i}", value=f"v{i}"),
                                    timeout=20.0)
            await asyncio.sleep(config.max_latency)
            for i in range(args.reads):
                for client in cluster.clients:
                    try:
                        await cluster.read(client,
                                           KVGet(key=f"k{i % args.writes}"),
                                           timeout=10.0)
                    except (TimeoutError, asyncio.TimeoutError):
                        pass
            # Let the auditor's deliberate lag expire and audits drain.
            await asyncio.sleep(2 * (config.max_latency
                                     + config.audit_grace) + 0.5)
            spans: list[Span] = []
            health: dict[str, Any] = {}
            for node_id in sorted(cluster.servers):
                dump = await cluster.scrape_spans(node_id)
                spans.extend(span_from_wire(wire) for wire in dump.spans)
                probe = await cluster.scrape_health(node_id)
                health[node_id] = {
                    "spans_buffered": probe.spans_buffered,
                    "spans_dropped": probe.spans_dropped,
                    "contexts_received": probe.contexts_received,
                }
            report = run_report(spans, config.max_latency)
            report["section_3_5"] = {
                "immediate_detections":
                    cluster.metrics.count("immediate_detections"),
                "exclusions": cluster.metrics.count("exclusions"),
                "exclusion_spans": sum(
                    1 for s in spans if s.op == "master.exclusion"),
                "contexts_received":
                    sum(h["contexts_received"] for h in health.values()),
                "ok": cluster.metrics.count("exclusions") >= 1 and any(
                    s.op == "master.exclusion" for s in spans),
            }
            report["health"] = health
            report["ok"] = bool(report["ok"]
                                and report["section_3_5"]["ok"])
            return spans, report, cluster.metrics
        finally:
            await cluster.aclose()

    spans, report, metrics = asyncio.run(drive())
    os.makedirs(args.out, exist_ok=True)

    def emit(name: str, text: str) -> None:
        path = os.path.join(args.out, name)
        with open(path, "w") as handle:
            handle.write(text)
        print(f"wrote {path}")

    emit("spans.jsonl", spans_jsonl(spans))
    emit("trace.json", json.dumps(chrome_trace(spans), indent=2))
    emit("metrics.prom", prometheus_text(metrics))
    emit("report.json", json.dumps(report, indent=2, default=str))
    print(f"spans scraped           : {len(spans)}")
    print(f"audit lag ok (S3.4)     : {report['audit_lag']['ok']}")
    print(f"detections ok (S3.4)    : {report['detection']['ok']}")
    print(f"exclusions ok (S3.5)    : {report['section_3_5']['ok']}")
    return 0 if report["ok"] else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Alias for ``python -m tools.protolint``: ships the linter with
    the installed package.

    ``tools/`` is repository tooling rather than part of the ``repro``
    wheel, so locate it relative to a checkout: walk up from the CWD
    (and from this file, for editable installs) until a directory
    containing ``tools/protolint`` appears, put it on ``sys.path`` and
    delegate.  Default paths lint the whole checkout.
    """
    candidates = [Path.cwd(), *Path.cwd().parents,
                  Path(__file__).resolve(), *Path(__file__).resolve().parents]
    root = next((base for base in candidates
                 if (base / "tools" / "protolint" / "cli.py").is_file()),
                None)
    if root is None:
        print("repro-sim lint: no tools/protolint found above the current "
              "directory; run from a repository checkout", file=sys.stderr)
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.protolint.cli import main as protolint_main

    forwarded = [arg for arg in args.lint_args if arg != "--"]
    if not forwarded:
        forwarded = [str(root / part)
                     for part in ("src", "tools", "benchmarks", "examples")
                     if (root / part).is_dir()]
    return protolint_main(forwarded)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "net-demo":
        return cmd_net_demo(args)
    if args.command == "shard-demo":
        return cmd_shard_demo(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "obs":
        return cmd_obs(args)
    if args.command == "lint":
        return cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

"""Reproduction of "Secure Data Replication over Untrusted Hosts" (HotOS 2003).

Popescu, Crispo and Tanenbaum describe an architecture in which data content
is replicated on *untrusted* slave servers fronted by a small set of trusted
master servers.  Reads are executed by slaves and protected statistically --
by client-driven probabilistic double-checking against a master and by a
background auditor that re-executes every read -- while writes are executed
only on the masters and disseminated lazily under a bounded inconsistency
window (``max_latency``).

This package implements the complete system plus every substrate the paper
assumes:

``repro.crypto``
    Pure-Python RSA signatures, SHA-1 hashing, HMAC fast signatures,
    certificates, and Merkle hash trees.
``repro.sim``
    A deterministic discrete-event WAN simulator with pluggable latency
    models, message loss and crash-failure injection.
``repro.broadcast``
    A sequencer-based reliable totally-ordered broadcast tolerating benign
    crashes (the protocol the paper cites as [8]).
``repro.content``
    Replicated data-content engines: a key-value store, an in-memory file
    system with ``grep``, and a mini relational database, all driven by a
    common serialisable query language.
``repro.core``
    The paper's contribution: masters, slaves, clients, the auditor, the
    pledge/double-check/audit protocols, corrective action, and the
    Section 4 variants.
``repro.baselines``
    The two comparison points from Section 5: Merkle state signing and
    quorum state-machine replication.
``repro.workloads``, ``repro.analysis``, ``repro.metrics``
    Workload generators, closed-form analytic models, and instrumentation
    used by the benchmark harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Admission control and overload survival for the serving plane.

The paper's only load-shedding mechanism is Section 3.3's greedy-client
token bucket, applied by masters to double-check requests ("simply
ignoring" statistically greedy clients).  This package grows that seed
into a reusable serving-plane layer, wired through :mod:`repro.net`,
:mod:`repro.chaos` and :mod:`repro.obs`:

* :mod:`repro.qos.tokens` -- the extracted :class:`TokenBucket` plus
  per-client wire admission (frames/s and bytes/s buckets, strike
  penalties for malformed traffic);
* :mod:`repro.qos.queue` -- bounded inbound queue between frame decode
  and protocol dispatch, with an explicit oldest-first drop policy that
  NEVER sheds keep-alives or accusations;
* :mod:`repro.qos.breaker` -- per-peer circuit breaker
  (closed -> open -> half-open) wrapping the connection pool's retry
  budget so dead peers stop consuming it.

Every class here is pure and deterministic: clocks are passed in as
``now`` arguments and shed randomness comes from caller-seeded
``random.Random`` streams, so the same decision sequence replays for a
given seed.  The asyncio wiring lives in :mod:`repro.net`.
"""

from repro.qos.breaker import BreakerPolicy, CircuitBreaker
from repro.qos.queue import InboundQueue
from repro.qos.tokens import AdmissionPolicy, ClientAdmission, TokenBucket

__all__ = [
    "AdmissionPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "ClientAdmission",
    "InboundQueue",
    "TokenBucket",
]

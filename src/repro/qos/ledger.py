"""Per-principal admission: buckets keyed by key fingerprint, not
connection.

The per-connection admission in :class:`repro.net.server.NodeServer`
has a documented evasion: a greedy client that reconnects (or fans out
across many connections / hosts ids) starts every new connection with a
fresh burst allowance.  The ledger closes it by keying the
frame/byte buckets on the client's *key fingerprint* -- the identity
the protocol already authenticates -- so admission state survives
reconnect churn and is shared across every connection and listener the
deployment wires to the same ledger.

Unregistered node ids (anything the deployment never bound to a key)
share a single anonymous account: inventing fresh ids mints no fresh
tokens.
"""

from __future__ import annotations

from repro.crypto.hashing import sha1_hex
from repro.crypto.signatures import PublicKey
from repro.qos.tokens import AdmissionPolicy, ClientAdmission


def key_fingerprint(public_key: PublicKey) -> str:
    """A stable fingerprint for any public-key type."""
    fingerprint = getattr(public_key, "fingerprint", None)
    if callable(fingerprint):
        result = fingerprint()
        assert isinstance(result, str)
        return result
    return sha1_hex(repr(public_key))


class AdmissionLedger:
    """Deployment-wide admission accounts, one per principal.

    ``register`` binds a node id to a key fingerprint (deployment-time
    knowledge: the same place that provisions client keys).  ``account``
    resolves a node id to its principal's shared
    :class:`~repro.qos.tokens.ClientAdmission`; ids bound to the same
    key share one bucket, and unbound ids share the anonymous one.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        #: node id -> principal key fingerprint.
        self._principals: dict[str, str] = {}
        #: fingerprint -> shared admission account.
        self._accounts: dict[str, ClientAdmission] = {}
        self._anonymous: ClientAdmission | None = None

    def register(self, node_id: str, fingerprint: str) -> None:
        """Bind ``node_id`` to a principal."""
        self._principals[node_id] = fingerprint

    def register_key(self, node_id: str, public_key: PublicKey) -> None:
        self.register(node_id, key_fingerprint(public_key))

    def principal_of(self, node_id: str) -> str | None:
        """The registered fingerprint, or None (-> anonymous account)."""
        return self._principals.get(node_id)

    def account(self, node_id: str, now: float) -> ClientAdmission:
        fingerprint = self._principals.get(node_id)
        if fingerprint is None:
            anonymous = self._anonymous
            if anonymous is None:
                anonymous = self._anonymous = ClientAdmission(
                    self.policy, now)
            return anonymous
        existing = self._accounts.get(fingerprint)
        if existing is None:
            existing = self._accounts[fingerprint] = ClientAdmission(
                self.policy, now)
        return existing

    def accounts(self) -> dict[str, ClientAdmission]:
        """Fingerprint -> account snapshot (for status/tests)."""
        return dict(self._accounts)


__all__ = ["AdmissionLedger", "key_fingerprint"]

"""Token buckets and per-client wire admission.

:class:`TokenBucket` is the paper's Section 3.3 greedy-client allowance,
extracted from ``repro.core.master`` so the same refill arithmetic
serves both the protocol-level double-check quota and the wire-level
per-client rate limits in :class:`repro.net.server.NodeServer`.

The bucket is a pure function of its call sequence: time is always an
explicit ``now`` argument (simulated seconds under the discrete-event
scheduler, loop time under the socket runtime), so simulated runs stay
deterministic and property tests can drive it with synthetic clocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class TokenBucket:
    """A refilling allowance: ``rate`` tokens/s up to ``burst`` deep.

    ``try_consume`` refills lazily from the elapsed time since the last
    call, so an idle client regains its full burst and a steady client
    settles at exactly ``rate`` admissions per second.  ``penalize``
    burns tokens without admitting anything (strike-driven deductions
    for malformed traffic); the level may go as far negative as one
    burst, extending the shed window for repeat offenders without
    letting a single strike lock a client out forever.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be positive, got {rate}/{burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def refill(self, now: float) -> float:
        """Advance the bucket to ``now``; returns the token level."""
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated_at) * self.rate)
        self.updated_at = now
        return self.tokens

    def try_consume(self, now: float, cost: float = 1.0) -> bool:
        """Admit one request of ``cost`` tokens if the allowance covers it."""
        self.refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def penalize(self, cost: float) -> None:
        """Burn ``cost`` tokens (floored at ``-burst``) without admitting."""
        self.tokens = max(-self.burst, self.tokens - cost)


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """Wire-level admission knobs for one node's listener.

    ``None`` rates disable the corresponding bucket; an all-``None``
    policy still buys the bounded inbox and (when ``idle_timeout`` is
    set) the idle-connection reaper.  ``shed_fraction`` mirrors the
    master's ``greedy_drop_fraction``: the seeded fraction of over-quota
    frames actually shed (1.0 = shed all of them).
    """

    #: Sustained protocol messages/s admitted per client connection.
    frame_rate: float | None = None
    frame_burst: float = 200.0
    #: Sustained frame bytes/s admitted per client connection.
    byte_rate: float | None = None
    byte_burst: float = 1024.0 * 1024.0
    #: Seeded fraction of over-quota frames shed (1.0 = all).
    shed_fraction: float = 1.0
    #: Frame tokens burned per rejected/oversized frame, so repeat
    #: offenders drain their own allowance.
    strike_cost: float = 1.0
    #: Seconds the listener stalls an over-quota connection's reader
    #: per shed frame (0 disables).  Shedding alone still pays decode
    #: for every flooded frame; the stall turns the shed into TCP
    #: backpressure, so a greedy client's pipeline slows at the source
    #: instead of arriving as synchronized retry waves.  Only the
    #: offending connection is delayed -- other peers' connections
    #: (and the keep-alives riding them) are unaffected.
    shed_penalty: float = 0.05
    #: Bounded inbox depth between decode and dispatch.
    inbox_limit: int = 1024
    #: Abort a handshaked-but-silent connection after this many seconds
    #: (deployments derive it as a multiple of ``keepalive_interval``).
    idle_timeout: float | None = None

    def __post_init__(self) -> None:
        for name in ("frame_rate", "byte_rate"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.frame_burst <= 0 or self.byte_burst <= 0:
            raise ValueError("bucket bursts must be positive")
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise ValueError(
                f"shed_fraction must be in [0, 1], got {self.shed_fraction}")
        if self.strike_cost < 0:
            raise ValueError(
                f"strike_cost must be >= 0, got {self.strike_cost}")
        if self.shed_penalty < 0:
            raise ValueError(
                f"shed_penalty must be >= 0, got {self.shed_penalty}")
        if self.inbox_limit < 1:
            raise ValueError(
                f"inbox_limit must be >= 1, got {self.inbox_limit}")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be positive, got {self.idle_timeout}")

    @property
    def limits_frames(self) -> bool:
        return self.frame_rate is not None or self.byte_rate is not None


class ClientAdmission:
    """One client's wire admission state: buckets plus strike count."""

    __slots__ = ("frames", "bytes", "strikes")

    def __init__(self, policy: AdmissionPolicy, now: float) -> None:
        self.frames = (None if policy.frame_rate is None else
                       TokenBucket(policy.frame_rate, policy.frame_burst,
                                   now))
        self.bytes = (None if policy.byte_rate is None else
                      TokenBucket(policy.byte_rate, policy.byte_burst, now))
        self.strikes = 0

    def admit(self, now: float, size: float, rng: random.Random,
              policy: AdmissionPolicy) -> str | None:
        """Charge one frame of ``size`` bytes; returns the shed reason
        (``"rate"`` / ``"bytes"``) or ``None`` when admitted.

        The shed decision is seeded: an over-quota frame is shed with
        probability ``policy.shed_fraction`` drawn from the caller's
        rng stream, exactly like the master's greedy-drop decision.
        """
        over = None
        if self.frames is not None and not self.frames.try_consume(now):
            over = "rate"
        elif self.bytes is not None and \
                not self.bytes.try_consume(now, cost=size):
            over = "bytes"
        if over is None:
            return None
        if rng.random() < policy.shed_fraction:
            return over
        return None

    def strike(self, policy: AdmissionPolicy) -> None:
        """Record one rejected/oversized frame from this client."""
        self.strikes += 1
        if self.frames is not None:
            self.frames.penalize(policy.strike_cost)


__all__ = ["AdmissionPolicy", "ClientAdmission", "TokenBucket"]

"""Queue-based load leveling between frame decode and dispatch.

:class:`InboundQueue` is the bounded buffer a listener places between
``read_frame`` and protocol dispatch.  Its drop policy is explicit:

* when full, the *oldest* sheddable entry is evicted to make room --
  under overload a reader is better served by the freshest requests
  (stale ones have usually already timed out client-side);
* entries marked *protected* (keep-alives and accusations, classified
  by the caller) are NEVER shed: keep-alives carry the Section 3.1
  freshness the whole read protocol hangs off, and accusations carry
  Section 3.5's proof-of-misbehaviour.  Protected traffic may push the
  queue past its limit; its volume is bounded by timer frequency, not
  by workload, so the overshoot is a few entries at worst.

The queue is synchronous and pure -- the asyncio drain task lives in
:class:`repro.net.server.NodeServer` -- so its policy is unit-testable
without an event loop and stays inside the determinism lint scope.
"""

from __future__ import annotations

from collections import deque
from typing import Any


class InboundQueue:
    """Bounded FIFO with oldest-first shedding of unprotected entries."""

    __slots__ = ("limit", "shed", "protected_overflow", "_items")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        #: Entries dropped to make room (for callers' accounting).
        self.shed = 0
        #: Protected entries admitted past the limit.
        self.protected_overflow = 0
        self._items: deque[tuple[Any, bool]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any, protected: bool = False) -> Any | None:
        """Append ``item``; returns the entry shed to make room, if any.

        The returned value is the evicted oldest sheddable entry, or
        ``item`` itself when everything queued is protected and ``item``
        is not, or ``None`` when nothing was shed.
        """
        if len(self._items) < self.limit:
            self._items.append((item, protected))
            return None
        for index, (_entry, entry_protected) in enumerate(self._items):
            if not entry_protected:
                victim = self._items[index][0]
                del self._items[index]
                self._items.append((item, protected))
                self.shed += 1
                return victim
        if protected:
            # Full of protected traffic: never shed it, admit over limit.
            self._items.append((item, protected))
            self.protected_overflow += 1
            return None
        self.shed += 1
        return item

    def get(self) -> Any | None:
        """Pop the oldest entry, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()[0]

    def clear(self) -> None:
        self._items.clear()


__all__ = ["InboundQueue"]

"""Per-peer circuit breaking for the outbound connection pool.

The pool's :class:`~repro.net.transport.RetryPolicy` bounds how hard one
*frame batch* tries; it says nothing about how hard the pool keeps
trying against a peer that has been dead for seconds.  Without a
breaker, every queued batch to a crashed host burns the full retry
budget (connect timeouts, backoff sleeps) before being dropped --
budget that live peers' traffic then waits behind.

:class:`CircuitBreaker` is the classic three-state machine:

* ``closed``    -- deliveries flow; consecutive delivery failures are
  counted, and ``failure_threshold`` of them trip the breaker;
* ``open``      -- sends are refused outright (the caller drops the
  frame immediately, spending zero retry budget) until
  ``reset_timeout`` has elapsed;
* ``half_open`` -- up to ``half_open_max`` probe deliveries are allowed
  through; the first success closes the breaker, the first failure
  re-opens it for another ``reset_timeout``.

Pure and deterministic: the clock is always an explicit ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Thresholds for one pool's per-peer breakers."""

    #: Consecutive delivery failures (each one a fully exhausted retry
    #: budget) before the breaker opens.
    failure_threshold: int = 2
    #: Seconds an open breaker refuses sends before probing again.
    reset_timeout: float = 1.0
    #: Probe deliveries allowed through a half-open breaker.
    half_open_max: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}")
        if self.reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {self.reset_timeout}")
        if self.half_open_max < 1:
            raise ValueError(
                f"half_open_max must be >= 1, got {self.half_open_max}")


class CircuitBreaker:
    """One peer's breaker state (see module docstring for the machine)."""

    __slots__ = ("policy", "state", "failures", "opened_at", "probes",
                 "trips")

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probes = 0
        #: Lifetime count of closed/half-open -> open transitions.
        self.trips = 0

    def allow(self, now: float) -> bool:
        """May a delivery be attempted right now?

        An open breaker past its reset timeout transitions to half-open
        as a side effect, so callers need no separate tick.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at < self.policy.reset_timeout:
                return False
            self.state = HALF_OPEN
            self.probes = 0
        if self.probes < self.policy.half_open_max:
            self.probes += 1
            return True
        return False

    def record_success(self, now: float) -> None:
        """A delivery went through: close and forget past failures."""
        del now  # symmetry with record_failure; the clock is not needed
        self.state = CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        """A delivery exhausted its retry budget."""
        if self.state == HALF_OPEN:
            self._trip(now)
            return
        self.failures += 1
        if self.state == CLOSED \
                and self.failures >= self.policy.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.opened_at = now
        self.failures = 0
        self.trips += 1


__all__ = ["BreakerPolicy", "CLOSED", "CircuitBreaker", "HALF_OPEN", "OPEN"]

"""Trace context: the causal identity that rides protocol operations.

A :class:`TraceContext` is deliberately tiny -- trace id, span id and
the sampling decision -- because it crosses two very different
boundaries:

* **in-process**: the scheduler (``Simulator.schedule`` and
  ``RealtimeScheduler.schedule``) captures the active context at
  schedule time and restores it while the event fires, so causality
  follows the event graph with no per-call-site plumbing;
* **on the wire**: :class:`TraceCarrier` wraps an outgoing protocol
  message in an *envelope*.  The carrier is a codec extension
  (``net/codec.py`` ids 8-9), appended to the registry, so older peers
  reject the frame gracefully (``net_frames_rejected``) and the framing
  layer stays aligned.  Crucially the carried message is re-encoded by
  the same init-fields-only dataclass codec as before, so signed
  payloads verify byte-identically whether or not a context is
  attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of one causal chain: which trace, which parent span."""

    trace_id: str
    span_id: str
    sampled: bool = True


@dataclass(frozen=True, slots=True)
class TraceCarrier:
    """Wire envelope: a protocol message plus the sender's context.

    ``message`` is any codec-registered value; signatures inside it are
    untouched because the envelope wraps, never rewrites.
    """

    context: TraceContext
    message: Any

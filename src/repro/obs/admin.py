"""The admin plane: ObsDump / ObsHealth over the existing frame codec.

Deliberately *not* HTTP: the repo already has a versioned, length-
prefixed, back-compatible frame transport with handshakes and error
containment (``repro.net``), so the admin plane is four more message
types on that wire (codec extension ids 10-13).  ``NodeServer`` answers
them inline on the inbound connection when constructed with an
:class:`AdminPlane`; a node without one simply dispatches the request
to the protocol handler, which ignores it -- opt-in by construction.

Spans travel as plain tuples (:func:`span_to_wire`), not as the
``Span`` dataclass, so the dump format is stable even if the in-memory
span model grows fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.spans import ObsRuntime, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Node

#: Sentinel for "span not finished" in the wire encoding (span end
#: times are scheduler clocks, which are never negative).
_OPEN = -1.0


@dataclass(frozen=True, slots=True)
class ObsDumpRequest:
    """Ask a node for its buffered spans (most recent ``max_spans``)."""

    max_spans: int = 1024
    clear: bool = False


@dataclass(frozen=True, slots=True)
class ObsDumpReply:
    """A node's span buffer, as :func:`span_to_wire` tuples."""

    node_id: str
    spans: tuple[tuple[Any, ...], ...]
    dropped: int


@dataclass(frozen=True, slots=True)
class ObsHealthRequest:
    """Ask a node for a one-frame liveness/trace-health summary."""

    probe: int = 0


@dataclass(frozen=True, slots=True)
class ObsHealthReply:
    node_id: str
    now: float
    spans_buffered: int
    spans_dropped: int
    contexts_received: int
    events_processed: int


@dataclass(frozen=True, slots=True)
class QosStatusRequest:
    """Ask a node for its serving-plane admission/backpressure state.

    Part of the ObsHealth admin plane (PR 8): answered inline by
    ``NodeServer`` on any admin-enabled listener, it surfaces the
    :mod:`repro.qos` layer's degradation signals -- shed totals, inbox
    depth and the outbound pool's per-peer circuit-breaker states -- so
    a monitoring agent can tell backpressure from failure.
    """

    probe: int = 0


@dataclass(frozen=True, slots=True)
class QosStatusReply:
    node_id: str
    now: float
    #: Frames shed by wire-level admission since boot (all reasons).
    shed_total: float
    #: Current depth of the bounded decode->dispatch inbox.
    inbox_depth: int
    #: Entries evicted from the inbox to make room.
    inbox_shed: int
    #: (peer id, breaker state) for every peer the outbound pool has
    #: breaker state for; states are ``closed``/``open``/``half_open``.
    breakers: tuple[tuple[str, str], ...]
    #: Lifetime closed/half-open -> open breaker transitions.
    breaker_trips: int


def span_to_wire(span: Span) -> tuple[Any, ...]:
    """Stable tuple encoding of one span for ObsDump replies."""
    attrs = tuple(sorted(span.attrs.items()))
    return (span.trace_id, span.span_id, span.parent_id or "",
            span.node, span.op, span.start,
            _OPEN if span.end is None else span.end, attrs)


def span_from_wire(wire: tuple[Any, ...]) -> Span:
    (trace_id, span_id, parent_id, node, op, start, end, attrs) = wire
    return Span(trace_id=trace_id, span_id=span_id,
                parent_id=parent_id or None, node=node, op=op,
                start=start, end=None if end == _OPEN else end,
                attrs=dict(attrs))


class AdminPlane:
    """Answers admin requests from one deployment's shared runtime."""

    __slots__ = ("runtime",)

    def __init__(self, runtime: ObsRuntime) -> None:
        self.runtime = runtime

    def maybe_handle(self, node: "Node",
                     message: object) -> object | None:
        """Reply for an admin request, ``None`` for protocol traffic."""
        collector = self.runtime.collector
        if isinstance(message, ObsDumpRequest):
            buffered = collector.spans(node.node_id)
            limit = max(0, message.max_spans)
            if limit < len(buffered):
                buffered = buffered[-limit:]
            reply = ObsDumpReply(
                node_id=node.node_id,
                spans=tuple(span_to_wire(span) for span in buffered),
                dropped=collector.dropped(node.node_id))
            if message.clear:
                collector.clear(node.node_id)
            return reply
        if isinstance(message, ObsHealthRequest):
            buffer = collector.buffers.get(node.node_id)
            return ObsHealthReply(
                node_id=node.node_id,
                now=node.simulator.now,
                spans_buffered=len(buffer) if buffer is not None else 0,
                spans_dropped=collector.dropped(node.node_id),
                contexts_received=self.runtime.contexts_received,
                events_processed=node.simulator.events_processed)
        return None

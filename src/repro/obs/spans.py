"""The span model and the per-run observability runtime.

Design constraints, in order:

1. **Zero cost when disabled.**  Instrumented call sites guard on
   ``simulator.obs is not None`` -- one attribute load and an ``is``
   check -- so PR 1's fastpath numbers are unaffected when tracing is
   off (the default everywhere).
2. **Deterministic.**  Span/trace ids come from a monotonic counter and
   timestamps from the owning scheduler's clock (virtual time under the
   simulator, loop time under ``RealtimeScheduler``); the sampling
   decision draws from a seed-derived ``random.Random``.  A simulated
   run with tracing enabled is still a pure function of its seed.
3. **Bounded.**  Finished spans land in per-node ring buffers
   (:class:`repro.obs.collect.SpanCollector`); nothing grows without
   limit.

Sampling applies at trace roots created via :meth:`ObsRuntime.trace`
(client-operation entry points).  Parentless spans created with
:meth:`ObsRuntime.span` / :meth:`ObsRuntime.event` -- e.g.
``auditor.advance`` ticks or ``master.takeover`` -- are *always*
recorded: the Section 3.4/3.5 invariant checks need every one of them,
and their volume is bounded by timer frequency, not workload.
"""

from __future__ import annotations

import itertools
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Protocol

from repro.obs.collect import SpanCollector
from repro.obs.context import TraceContext


class ClockLike(Protocol):
    """What the runtime needs from a scheduler: its clock."""

    @property
    def now(self) -> float: ...  # pragma: no cover - protocol


@dataclass(slots=True)
class Span:
    """One timed operation on one node, linked into a causal trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    node: str
    op: str
    start: float
    end: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    @property
    def context(self) -> TraceContext:
        """The context a child of this span should inherit."""
        return TraceContext(self.trace_id, self.span_id, True)


class ObsRuntime:
    """Per-run tracing state: id allocation, sampling, buffers, context.

    One runtime serves a whole deployment (attached to the shared
    scheduler as ``simulator.obs``); spans are segregated per node
    inside the collector.  ``current`` is the active
    :class:`TraceContext`; the schedulers capture and restore it around
    event firings, and ``NodeServer`` restores it from wire carriers.
    """

    __slots__ = ("clock", "sample_rate", "collector", "current",
                 "contexts_received", "_rng", "_ids")

    def __init__(self, clock: ClockLike, seed: int,
                 sample_rate: float = 1.0,
                 buffer_size: int = 4096) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.clock = clock
        self.sample_rate = sample_rate
        self.collector = SpanCollector(buffer_size)
        self.current: TraceContext | None = None
        #: Contexts restored from wire carriers (admin-plane health).
        self.contexts_received = 0
        # Seed-derived stream, independent of Simulator.fork_rng so that
        # enabling tracing does not shift the fork counter and thereby
        # the protocol's own randomness (key generation, workloads).
        self._rng = random.Random(f"obs/{seed}")
        self._ids = itertools.count(1)

    # -- span lifecycle ------------------------------------------------

    def trace(self, node: str, op: str, **attrs: object) -> Span | None:
        """Start a sampled root span (a client-operation entry point).

        Returns ``None`` when the seeded sampler skips this trace; all
        downstream instrumentation then short-circuits because no
        context propagates.
        """
        if self._rng.random() >= self.sample_rate:
            return None
        return self._begin(node, op, parent=None, attrs=attrs)

    def begin(self, node: str, op: str,
              parent: TraceContext | Span | None = None,
              **attrs: object) -> Span:
        """Start a span; parent defaults to the active context.

        With neither an explicit parent nor an active context this
        creates an always-recorded root (see module docstring).
        """
        resolved = self._resolve_parent(parent)
        return self._begin(node, op, parent=resolved, attrs=attrs)

    def end(self, span: Span | None, **attrs: object) -> None:
        """Finish a span: stamp the end time and buffer it."""
        if span is None:
            return
        span.end = self.clock.now
        if attrs:
            span.attrs.update(attrs)
        self.collector.add(span)

    def event(self, node: str, op: str, **attrs: object) -> Span:
        """Record a zero-duration span (an instant, e.g. a takeover)."""
        span = self.begin(node, op, **attrs)
        self.end(span)
        return span

    @contextmanager
    def span(self, node: str, op: str,
             **attrs: object) -> Iterator[Span]:
        """Span around a synchronous block, activated while it runs."""
        opened = self.begin(node, op, **attrs)
        previous = self.current
        self.current = opened.context
        try:
            yield opened
        finally:
            self.current = previous
            self.end(opened)

    @contextmanager
    def child_span(self, node: str, op: str,
                   **attrs: object) -> Iterator[Span | None]:
        """Span recorded only under an active (sampled) context.

        The workload-proportional call sites (slave reads, client
        verification, ACL checks) use this so that sampling at the
        trace root actually bounds span volume; with no active context
        it yields ``None`` and records nothing.
        """
        if self.current is None:
            yield None
            return
        opened = self.begin(node, op, **attrs)
        previous = self.current
        self.current = opened.context
        try:
            yield opened
        finally:
            self.current = previous
            self.end(opened)

    @contextmanager
    def activation(self,
                   target: TraceContext | Span | None) -> Iterator[None]:
        """Make ``target`` the active context for a ``with`` block."""
        if target is None:
            yield
            return
        context = target.context if isinstance(target, Span) else target
        previous = self.current
        self.current = context
        try:
            yield
        finally:
            self.current = previous

    # -- internals -----------------------------------------------------

    def _resolve_parent(
            self,
            parent: TraceContext | Span | None) -> TraceContext | None:
        if parent is None:
            return self.current
        if isinstance(parent, Span):
            return parent.context
        return parent

    def _begin(self, node: str, op: str,
               parent: TraceContext | None,
               attrs: dict[str, object]) -> Span:
        span_id = f"s{next(self._ids):06x}"
        if parent is None:
            trace_id = f"t{next(self._ids):06x}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(trace_id=trace_id, span_id=span_id,
                    parent_id=parent_id, node=node, op=op,
                    start=self.clock.now,
                    attrs=dict(attrs) if attrs else {})

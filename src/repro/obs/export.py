"""Exporters: Prometheus text, JSONL spans, Chrome trace-event JSON.

Everything here renders *already collected* state; nothing mutates the
run.  This module is the one deliberate exception to protolint's PL001
determinism rule (see ``[tool.protolint.scope.PL001]`` in
``pyproject.toml``): a Prometheus scrape is a realtime artifact, so
:func:`prometheus_text` can stamp the wall-clock export time when asked
(``stamp=True``).  The stamp is presentation-only -- span timestamps
themselves always come from the owning scheduler's clock.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Iterable, Sequence

from repro.metrics.registry import Histogram, MetricsRegistry
from repro.obs.spans import Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def span_dict(span: Span) -> dict[str, object]:
    """Plain-JSON view of one span (the JSONL record shape)."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "node": span.node,
        "op": span.op,
        "start": span.start,
        "end": span.end,
        "attrs": dict(span.attrs),
    }


def spans_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line; trailing newline when non-empty."""
    lines = [json.dumps(span_dict(span), sort_keys=True)
             for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(spans: Iterable[Span]) -> dict[str, object]:
    """Chrome trace-event JSON: load in chrome://tracing or Perfetto.

    Complete (``"ph": "X"``) events, one track per node (pid) and trace
    (tid); times are microseconds relative to the scheduler clock's
    zero.
    """
    events: list[dict[str, object]] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.op,
            "cat": "repro",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": span.node,
            "tid": span.trace_id,
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **dict(span.attrs),
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def prometheus_text(metrics: MetricsRegistry, namespace: str = "repro",
                    stamp: bool = False) -> str:
    """Prometheus text exposition of a :class:`MetricsRegistry`.

    Counters become ``counter`` families; per-node counters named
    ``base@node`` (the registry's convention, e.g. ``commits@master-00``)
    fold into one family with a ``node`` label.  Timelines export their
    latest value as a ``gauge``; histograms use the native histogram
    format with cumulative ``le`` buckets.
    """
    lines: list[str] = []
    if stamp:
        # Realtime scrape timestamp -- the PL001-exempt wall-clock read.
        lines.append(f"# exported_at {time.time():.3f}")

    families: dict[str, list[tuple[str | None, float]]] = {}
    for name in sorted(metrics.counters):
        base, _, node = name.partition("@")
        families.setdefault(base, []).append(
            (node or None, metrics.counters[name]))
    for base in sorted(families):
        metric = f"{namespace}_{_sanitize(base)}"
        lines.append(f"# TYPE {metric} counter")
        for node, value in families[base]:
            lines.append(f"{_with_label(metric, node)} {_num(value)}")

    for name in sorted(metrics.timelines):
        last = metrics.timelines[name].last()
        if last is None:
            continue
        metric = f"{namespace}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_num(last)}")

    for name in sorted(metrics.histograms):
        lines.extend(_histogram_lines(
            f"{namespace}_{_sanitize(name)}", metrics.histograms[name]))

    return "\n".join(lines) + ("\n" if lines else "")


def histogram_text(name: str, histogram: Histogram) -> str:
    """Prometheus text for one standalone histogram."""
    return "\n".join(_histogram_lines(_sanitize(name), histogram)) + "\n"


def _histogram_lines(metric: str, histogram: Histogram) -> Sequence[str]:
    lines = [f"# TYPE {metric} histogram"]
    for bound, cumulative in histogram.cumulative_buckets():
        le = "+Inf" if math.isinf(bound) else _num(bound)
        lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f"{metric}_sum {_num(histogram.total)}")
    lines.append(f"{metric}_count {histogram.count}")
    return lines


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _with_label(metric: str, node: str | None) -> str:
    if node is None:
        return metric
    return f'{metric}{{node="{node}"}}'


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.9g}"

"""Bounded per-node span buffers.

Each node gets its own ring buffer so one chatty node cannot evict
another node's spans, and the admin plane (``ObsDump``) can answer
per-node queries without filtering a global list.  Buffers are bounded
(``capacity`` spans) because observability must never become the memory
leak it is meant to find; overflow drops the *oldest* span and counts
the drop.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spans imports us)
    from repro.obs.spans import Span


class SpanBuffer:
    """Ring buffer of finished spans for one node."""

    __slots__ = ("capacity", "dropped", "_spans")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: deque[Span] = deque(maxlen=capacity)

    def add(self, span: "Span") -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator["Span"]:
        return iter(self._spans)

    def snapshot(self, limit: int | None = None) -> list["Span"]:
        """Most recent ``limit`` spans (all if ``None``), oldest first."""
        spans = list(self._spans)
        if limit is not None and limit < len(spans):
            spans = spans[-limit:]
        return spans

    def clear(self) -> None:
        self._spans.clear()


class SpanCollector:
    """Per-node :class:`SpanBuffer` map with a uniform capacity."""

    __slots__ = ("capacity", "buffers")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.buffers: dict[str, SpanBuffer] = {}

    def add(self, span: "Span") -> None:
        buffer = self.buffers.get(span.node)
        if buffer is None:
            buffer = SpanBuffer(self.capacity)
            self.buffers[span.node] = buffer
        buffer.add(span)

    def spans(self, node: str | None = None) -> list["Span"]:
        """Finished spans for one node, or all nodes in node order."""
        if node is not None:
            buffer = self.buffers.get(node)
            return buffer.snapshot() if buffer is not None else []
        collected: list[Span] = []
        for node_id in sorted(self.buffers):
            collected.extend(self.buffers[node_id].snapshot())
        return collected

    def dropped(self, node: str | None = None) -> int:
        if node is not None:
            buffer = self.buffers.get(node)
            return buffer.dropped if buffer is not None else 0
        return sum(buffer.dropped for buffer in self.buffers.values())

    def nodes(self) -> list[str]:
        return sorted(self.buffers)

    def clear(self, node: str | None = None) -> None:
        if node is not None:
            buffer = self.buffers.get(node)
            if buffer is not None:
                buffer.clear()
            return
        for buffer in self.buffers.values():
            buffer.clear()

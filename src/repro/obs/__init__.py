"""repro.obs -- causal tracing, metrics export and the admin plane.

A deterministic observability layer shared by the discrete-event
simulator and the real socket stack (``repro.net``):

* :mod:`repro.obs.context` -- the ``TraceContext`` that rides protocol
  operations, in-process via the scheduler and across TCP via the
  ``TraceCarrier`` codec extension;
* :mod:`repro.obs.spans` -- the span model and :class:`ObsRuntime`
  (seeded sampling, zero-cost-when-disabled guards);
* :mod:`repro.obs.collect` -- bounded per-node span buffers;
* :mod:`repro.obs.export` -- Prometheus text, JSONL and Chrome
  trace-event exporters;
* :mod:`repro.obs.admin` -- ``ObsDump``/``ObsHealth``/``QosStatus``
  served over the existing frame transport so clusters can scrape live
  nodes;
* :mod:`repro.obs.analyze` -- critical paths, per-op latency
  percentiles and the Section 3.4 / 3.5 invariant cross-checks.

See docs/OBSERVABILITY.md for the full tour.
"""

from repro.obs.admin import (
    AdminPlane,
    ObsDumpReply,
    ObsDumpRequest,
    ObsHealthReply,
    ObsHealthRequest,
    QosStatusReply,
    QosStatusRequest,
    span_from_wire,
    span_to_wire,
)
from repro.obs.analyze import (
    audit_lag_check,
    critical_path,
    detection_check,
    group_traces,
    latency_report,
    run_report,
)
from repro.obs.collect import SpanBuffer, SpanCollector
from repro.obs.context import TraceCarrier, TraceContext
from repro.obs.export import chrome_trace, prometheus_text, spans_jsonl
from repro.obs.spans import ObsRuntime, Span

__all__ = [
    "AdminPlane",
    "ObsDumpReply",
    "ObsDumpRequest",
    "ObsHealthReply",
    "ObsHealthRequest",
    "ObsRuntime",
    "QosStatusReply",
    "QosStatusRequest",
    "Span",
    "SpanBuffer",
    "SpanCollector",
    "TraceCarrier",
    "TraceContext",
    "audit_lag_check",
    "chrome_trace",
    "critical_path",
    "detection_check",
    "group_traces",
    "latency_report",
    "prometheus_text",
    "run_report",
    "span_from_wire",
    "span_to_wire",
    "spans_jsonl",
]

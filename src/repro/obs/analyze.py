"""Trace analysis: critical paths, latency percentiles, invariants.

The point of this module is that the paper's headline claims are
*temporal* and can be re-derived from spans alone, with no access to
protocol internals:

* **Section 3.4 (audit lag)** -- every ``auditor.advance`` to version v
  must start at least ``max_latency`` after the first ``master.commit``
  of v, otherwise the auditor could overtake live pledges;
* **Section 3.5 (detection timeline)** -- every audit detection is a
  *delayed* discovery: its span starts only after the auditor advanced
  to the lied-about version, and it carries the pledge-age lag that the
  corrective-action analysis quotes.

``run_report`` bundles those checks with per-op latency histograms and
critical-path extraction; the ``repro-sim obs`` CLI prints it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.metrics.registry import Histogram
from repro.obs.spans import Span

#: Tolerance for float comparisons on scheduler timestamps.
_EPS = 1e-6


def group_traces(spans: Iterable[Span]) -> dict[str, list[Span]]:
    """Spans per trace id, each list ordered by start time."""
    traces: dict[str, list[Span]] = defaultdict(list)
    for span in spans:
        traces[span.trace_id].append(span)
    for members in traces.values():
        members.sort(key=lambda s: (s.start, s.span_id))
    return dict(traces)


def critical_path(trace_spans: Sequence[Span]) -> list[Span]:
    """Root-to-leaf chain ending at the latest-finishing span.

    The "critical path" of an event-driven operation is the ancestor
    chain of whichever span completed last: the work that bounded the
    operation's latency.  Returns ``[]`` for an empty trace.
    """
    if not trace_spans:
        return []
    by_id = {span.span_id: span for span in trace_spans}

    def finish(span: Span) -> float:
        return span.end if span.end is not None else span.start

    leaf = max(trace_spans, key=lambda s: (finish(s), s.span_id))
    path = [leaf]
    seen = {leaf.span_id}
    cursor = leaf
    while cursor.parent_id is not None:
        parent = by_id.get(cursor.parent_id)
        if parent is None or parent.span_id in seen:
            break  # parent buffered out, or a malformed cycle
        path.append(parent)
        seen.add(parent.span_id)
        cursor = parent
    path.reverse()
    return path


def critical_path_summary(
        spans: Iterable[Span]) -> dict[str, dict[str, object]]:
    """Per root-op: how many traces, which op chains bound latency."""
    summary: dict[str, dict[str, object]] = {}
    for trace_spans in group_traces(spans).values():
        roots = [s for s in trace_spans if s.parent_id is None]
        if not roots:
            continue
        root = roots[0]
        path = critical_path(trace_spans)
        chain = " > ".join(span.op for span in path)
        entry = summary.setdefault(
            root.op, {"traces": 0, "max_depth": 0, "paths": {}})
        entry["traces"] = int(entry["traces"]) + 1
        entry["max_depth"] = max(int(entry["max_depth"]), len(path))
        paths = entry["paths"]
        assert isinstance(paths, dict)
        paths[chain] = paths.get(chain, 0) + 1
    return summary


def op_histograms(spans: Iterable[Span],
                  bounds: Sequence[float] | None = None
                  ) -> dict[str, Histogram]:
    """One latency histogram per op, over finished spans."""
    histograms: dict[str, Histogram] = {}
    for span in spans:
        duration = span.duration
        if duration is None:
            continue
        histogram = histograms.get(span.op)
        if histogram is None:
            histogram = Histogram(bounds)
            histograms[span.op] = histogram
        histogram.observe(duration)
    return histograms


def latency_report(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    """count/mean/p50/p90/p99/min/max per op (bucket resolution)."""
    return {op: histogram.summary()
            for op, histogram in sorted(op_histograms(spans).items())}


def audit_lag_check(spans: Iterable[Span],
                    max_latency: float) -> dict[str, object]:
    """Section 3.4 from spans: advance(v) >= first commit(v) + L.

    Uses the *first* ``master.commit`` per version (commits of one
    version at different masters differ only by broadcast skew, which
    ``audit_grace`` absorbs) against the *first* ``auditor.advance``.
    Versions seen on only one side are reported but not judged.
    """
    commit_at: dict[int, float] = {}
    advance_at: dict[int, float] = {}
    for span in spans:
        version = span.attrs.get("version")
        if not isinstance(version, int):
            continue
        if span.op == "master.commit":
            commit_at[version] = min(
                commit_at.get(version, span.start), span.start)
        elif span.op == "auditor.advance":
            advance_at[version] = min(
                advance_at.get(version, span.start), span.start)
    shared = sorted(set(commit_at) & set(advance_at))
    lags = {v: advance_at[v] - commit_at[v] for v in shared}
    violations = [
        {"version": v, "lag": lags[v], "required": max_latency}
        for v in shared if lags[v] < max_latency - _EPS
    ]
    return {
        "versions_checked": len(shared),
        "commits_seen": len(commit_at),
        "advances_seen": len(advance_at),
        "min_lag": min(lags.values()) if lags else None,
        "required_lag": max_latency,
        "violations": violations,
        "ok": not violations and bool(shared),
    }


def detection_check(spans: Iterable[Span]) -> dict[str, object]:
    """Section 3.5 from spans: detections are delayed discoveries.

    Every ``auditor.audit`` span flagged ``detection`` must (a) start at
    or after the auditor advanced to the lied-about version -- the lie
    was only discoverable once the audit window for that version closed
    -- and (b) carry a non-negative pledge-age ``lag``.
    """
    advance_at: dict[int, float] = {}
    detections: list[dict[str, object]] = []
    for span in spans:
        if span.op == "auditor.advance":
            version = span.attrs.get("version")
            if isinstance(version, int):
                advance_at[version] = min(
                    advance_at.get(version, span.start), span.start)
    for span in spans:
        if span.op != "auditor.audit" or not span.attrs.get("detection"):
            continue
        version = span.attrs.get("version")
        lag = span.attrs.get("lag")
        advanced = advance_at.get(version) if isinstance(version, int) \
            else None
        after_advance = advanced is None or \
            span.start >= advanced - _EPS
        detections.append({
            "node": span.node,
            "version": version,
            "at": span.start,
            "lag": lag,
            "after_advance": after_advance,
            "ok": after_advance and isinstance(lag, float) and lag >= 0.0,
        })
    return {
        "detections": detections,
        "count": len(detections),
        "ok": all(bool(d["ok"]) for d in detections),
    }


def run_report(spans: Sequence[Span],
               max_latency: float) -> dict[str, object]:
    """The full trace report the ``repro-sim obs`` subcommand prints."""
    audit = audit_lag_check(spans, max_latency)
    detection = detection_check(spans)
    return {
        "spans": len(spans),
        "ops": latency_report(spans),
        "critical_paths": critical_path_summary(spans),
        "audit_lag": audit,
        "detection": detection,
        "ok": bool(audit["ok"]) and bool(detection["ok"]),
    }

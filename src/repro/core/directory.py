"""The public directory of master certificates.

Section 2: certificates "are stored in a public directory, indexed by
content public key.  Thus, by knowing the content public key and the
address of the directory, any client can securely get the addresses and
public keys of all the master servers replicating that content."

The directory itself is untrusted infrastructure: it serves certificates
but cannot forge them (they are signed with the content key), so clients
verify everything they receive.  A malicious directory can at worst
withhold entries -- a liveness attack, like any untrusted lookup service.
"""

from __future__ import annotations

from typing import Any

from repro.core.messages import DirectoryListing, DirectoryLookup
from repro.crypto.certificates import Certificate
from repro.shard.map import ShardMap
from repro.shard.wire import ShardMapReply, ShardMapRequest
from repro.sim.network import Network, Node
from repro.sim.simulator import Simulator


class DirectoryServer(Node):
    """Serves master certificate listings indexed by content key."""

    def __init__(self, node_id: str, simulator: Simulator,
                 network: Network) -> None:
        super().__init__(node_id, simulator, network)
        self._listings: dict[str, list[Certificate]] = {}
        #: namespace fingerprint -> latest published signed shard map.
        self._shard_maps: dict[str, ShardMap] = {}
        self.lookups_served = 0
        self.map_lookups_served = 0

    def publish(self, content_key_fingerprint: str,
                certificate: Certificate) -> None:
        """Owner-side: add one master certificate under a content key."""
        entries = self._listings.setdefault(content_key_fingerprint, [])
        entries[:] = [c for c in entries
                      if c.subject_id != certificate.subject_id]
        entries.append(certificate)

    def withdraw(self, content_key_fingerprint: str,
                 subject_id: str) -> None:
        """Owner-side: remove a master's certificate (decommissioning)."""
        entries = self._listings.get(content_key_fingerprint, [])
        entries[:] = [c for c in entries if c.subject_id != subject_id]

    def publish_shard_map(self, shard_map: ShardMap) -> None:
        """Owner-side: install a namespace's shard map.

        The directory keeps only the highest epoch it has seen.  It
        cannot forge maps (they are owner-signed), so the worst a
        compromised directory can do here is withhold or serve stale --
        clients reject epoch regressions themselves.
        """
        current = self._shard_maps.get(shard_map.namespace)
        if current is None or shard_map.epoch > current.epoch:
            self._shard_maps[shard_map.namespace] = shard_map

    def on_message(self, src_id: str, message: Any) -> None:
        if isinstance(message, DirectoryLookup):
            self.lookups_served += 1
            certs = tuple(self._listings.get(
                message.content_key_fingerprint, ()))
            self.send(src_id, DirectoryListing(certificates=certs))
        elif isinstance(message, ShardMapRequest):
            self.map_lookups_served += 1
            shard_map = self._shard_maps.get(message.namespace)
            if shard_map is not None and shard_map.epoch <= message.have_epoch:
                shard_map = None  # requester already has this or newer
            self.send(src_id, ShardMapReply(namespace=message.namespace,
                                            shard_map=shard_map))
        else:
            raise TypeError(
                f"directory got unexpected {type(message).__name__}"
            )

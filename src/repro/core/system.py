"""Deployment builder: the whole system wired onto one simulator.

:class:`ReplicationSystem` assembles the full Section 2 cast -- content
owner, public directory, master set, auditor, slave sets, clients -- on a
single discrete-event simulator, runs workloads against it, and provides
the offline oracle used to classify accepted reads as correct or wrong
(the harness-side ground truth the experiments report).

Topology notes:

* ``num_masters`` serving masters plus one additional trusted server that
  the masters elect as auditor at startup (the paper has the masters
  "elect one of them to function as an auditor"; the elected one serves
  no slaves, so provisioning it as a dedicated node is the same thing
  from the protocol's point of view).
* Slaves are distributed round-robin: ``slaves_per_master`` each.
* Byzantine behaviour is injected per slave index via ``adversaries``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.content.kvstore import KeyValueStore
from repro.content.queries import Operation, ReadQuery, operation_from_wire
from repro.content.store import ContentStore
from repro.core.adversary import AdversaryStrategy
from repro.core.auditor import AuditorServer
from repro.core.client import Client
from repro.core.config import ProtocolConfig
from repro.core.directory import DirectoryServer
from repro.core.master import MasterServer
from repro.core.owner import ContentOwner
from repro.core.slave import SlaveServer
from repro.crypto import fastpath
from repro.crypto.hashing import constant_time_equals, sha1_hex
from repro.metrics import MetricsRegistry
from repro.obs.spans import ObsRuntime
from repro.sim.failures import FailureInjector
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.tracing import MessageTracer

AUDITOR_NODE_ID = "zz-auditor-00"  # sorts last: master-00 stays sequencer


def auditor_node_id(index: int) -> str:
    return f"zz-auditor-{index:02d}"


@dataclass
class DeploymentSpec:
    """Everything needed to build one deployment."""

    num_masters: int = 3
    slaves_per_master: int = 4
    num_clients: int = 8
    #: Section 3.4: "the solution is to either add extra auditors, or
    #: weaken the security guarantees".  Clients hash-partition across
    #: the auditor set, so each pledge is still audited exactly once.
    num_auditors: int = 1
    seed: int = 0
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    latency: LatencyModel | None = None
    loss_probability: float = 0.0
    #: Record every wire message in ``system.tracer`` (debugging aid and
    #: message-count accounting; modest memory cost, bounded buffer).
    trace_messages: bool = False
    #: Attach a ``repro.obs`` runtime: causal spans across every node on
    #: this simulator.  Off by default -- instrumented hot paths then
    #: cost one ``is None`` check (see benchmarks/bench_obs_overhead.py).
    obs_enabled: bool = False
    #: Fraction of client-operation traces recorded (seeded sampler).
    obs_sample_rate: float = 1.0
    #: Per-node span ring-buffer capacity.
    obs_buffer_size: int = 4096
    #: Builds the initial content; all replicas start from clones of it.
    store_factory: Callable[[], ContentStore] | None = None
    #: Global slave index -> adversary strategy (honest when absent).
    adversaries: dict[int, AdversaryStrategy] = field(default_factory=dict)
    #: Client index -> double-check probability override (greedy clients).
    client_double_check_overrides: dict[int, float] = field(
        default_factory=dict)
    #: Client index -> personal max_latency (slow clients relaxing bounds).
    client_max_latency_overrides: dict[int, float] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_masters < 1:
            raise ValueError("need at least one master")
        if self.slaves_per_master < 1:
            raise ValueError("need at least one slave per master")
        if self.num_clients < 0:
            raise ValueError("client count cannot be negative")


class ReplicationSystem:
    """A fully wired deployment plus harness conveniences."""

    def __init__(self, spec: DeploymentSpec) -> None:
        # Start from cold fast-path caches so a run's cache-hit counters
        # depend only on (spec, seed), never on what else the process ran
        # before -- identical runs must report identical counters.
        fastpath.VERIFY_CACHE.clear()
        fastpath.CANONICAL_CACHE.clear()
        self.spec = spec
        self.config = spec.protocol
        self.metrics = MetricsRegistry()
        self.simulator = Simulator(seed=spec.seed)
        self.obs: ObsRuntime | None = None
        if spec.obs_enabled:
            # Seeded independently of fork_rng so enabling tracing never
            # shifts key derivation or workload randomness.
            self.obs = ObsRuntime(
                self.simulator, seed=spec.seed,
                sample_rate=spec.obs_sample_rate,
                buffer_size=spec.obs_buffer_size)
            self.simulator.obs = self.obs
        self.tracer = MessageTracer() if spec.trace_messages else None
        self.network = Network(
            self.simulator,
            latency=spec.latency or ConstantLatency(0.01),
            loss_probability=spec.loss_probability,
            tracer=self.tracer,
        )
        self.failures = FailureInjector(self.simulator)

        store_factory = spec.store_factory or (lambda: KeyValueStore())
        self.initial_store = store_factory()

        # -- owner and directory -----------------------------------------
        self.owner = ContentOwner(
            "content-owner", signer_scheme=self.config.signer_scheme,
            rsa_bits=self.config.rsa_bits,
            rng=self.simulator.fork_rng("keys:owner"))
        self.directory = DirectoryServer("directory", self.simulator,
                                         self.network)

        # -- trusted set: masters + auditors -------------------------------
        member_ids = [f"master-{i:02d}" for i in range(spec.num_masters)]
        member_ids.extend(auditor_node_id(i)
                          for i in range(spec.num_auditors))
        self.masters: list[MasterServer] = []
        for i in range(spec.num_masters):
            master = MasterServer(
                f"master-{i:02d}", self.simulator, self.network,
                self.config, self.initial_store.clone(), member_ids,
                self.metrics)
            self.masters.append(master)
        self.auditors: list[AuditorServer] = [
            AuditorServer(
                auditor_node_id(i), self.simulator, self.network,
                self.config, self.initial_store.clone(), member_ids,
                self.metrics)
            for i in range(spec.num_auditors)
        ]
        #: Convenience handle for the common single-auditor deployment.
        self.auditor = self.auditors[0]

        # Owner certifies every trusted server and publishes the masters.
        self.master_certs = {}
        for server in [*self.masters, *self.auditors]:
            cert = self.owner.certify_master(
                server.node_id, f"addr:{server.node_id}",
                server.keys.public_key)
            self.master_certs[server.node_id] = cert
        # Auditor certificates are not *serving* master entries; only
        # serving masters go into the directory listing clients use.
        fingerprint = self.owner.content_key_fingerprint()
        for master in self.masters:
            self.directory.publish(fingerprint,
                                   self.master_certs[master.node_id])

        # -- slaves ---------------------------------------------------------
        self.slaves: list[SlaveServer] = []
        global_index = 0
        for i, master in enumerate(self.masters):
            for j in range(spec.slaves_per_master):
                slave_id = f"slave-{i:02d}-{j:02d}"
                strategy = spec.adversaries.get(global_index)
                slave = SlaveServer(
                    slave_id, self.simulator, self.network, self.config,
                    self.initial_store.clone(), self.master_certs,
                    self.metrics, strategy=strategy)
                master.register_slave(slave_id, f"addr:{slave_id}",
                                      slave.keys.public_key)
                self.slaves.append(slave)
                global_index += 1

        # -- clients ----------------------------------------------------------
        self.clients: list[Client] = []
        for i in range(spec.num_clients):
            client = Client(
                f"client-{i:02d}", self.simulator, self.network,
                self.config, directory_id="directory",
                owner_public_key=self.owner.content_public_key,
                metrics=self.metrics,
                double_check_override=(
                    spec.client_double_check_overrides.get(i)),
                max_latency_override=(
                    spec.client_max_latency_overrides.get(i)))
            self.clients.append(client)

        self._started = False
        #: Process-wide fast-path counters at build time; ``summary()``
        #: reports deltas against this so concurrent builds in one
        #: process do not pollute each other's numbers.
        self._fastpath_baseline = fastpath.stats()

    # -- construction conveniences -------------------------------------------

    @classmethod
    def build(cls, spec: DeploymentSpec | None = None,
              **spec_kwargs: Any) -> "ReplicationSystem":
        """Build from a spec, or from keyword arguments directly."""
        if spec is None:
            spec = DeploymentSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError("pass either a spec or keyword args, not both")
        return cls(spec)

    # -- lifecycle ---------------------------------------------------------------

    def start(self, settle: float = 3.0) -> None:
        """Start every node, run the auditor election, let things settle.

        ``settle`` seconds of simulated time give the election, the first
        keep-alives and the first slave-list gossip time to propagate, so
        clients connecting afterwards get complete assignments.
        """
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for master in self.masters:
            master.start()
        for auditor in self.auditors:
            auditor.start()
        for slave in self.slaves:
            slave.start()
        # Rank-0 master proposes the dedicated trusted nodes as auditors.
        self.masters[0].elect_auditors(
            tuple(a.node_id for a in self.auditors))
        self.simulator.run_for(settle)
        for client in self.clients:
            client.start()
        self.simulator.run_for(1.0)

    def run_for(self, duration: float) -> None:
        """Advance simulated time."""
        self.simulator.run_for(duration)

    @property
    def now(self) -> float:
        return self.simulator.now

    # -- workload driving -----------------------------------------------------------

    def schedule_op(self, client: Client, at: float, op: Operation,
                    level: str | None = None,
                    callback: Callable[[dict], None] | None = None) -> None:
        """Schedule one operation submission at absolute time ``at``."""
        self.simulator.schedule_at(at, client.submit, op, level, callback)

    def schedule_workload(self, operations: Iterable[Operation],
                          arrival_times: Iterable[float],
                          clients: Sequence[Client] | None = None) -> int:
        """Spread (operation, time) pairs round-robin across clients.

        Returns the number of operations scheduled.
        """
        clients = list(clients if clients is not None else self.clients)
        if not clients:
            raise ValueError("no clients to schedule onto")
        count = 0
        for index, (op, at) in enumerate(zip(operations, arrival_times)):
            self.schedule_op(clients[index % len(clients)], at, op)
            count += 1
        return count

    # -- ground-truth oracle ---------------------------------------------------------

    def trusted_version_stores(self) -> dict[int, ContentStore]:
        """Reconstruct the content at every committed version.

        Replays the rank-0 master's (trusted, totally ordered) op log from
        the initial content.  Used only by the offline harness -- the
        protocol itself never consults it.
        """
        reference = self.masters[0]
        stores: dict[int, ContentStore] = {}
        current = self.initial_store.clone()
        stores[0] = current.clone()
        version = 0
        while version in reference._ops_archive:
            current.apply_write(
                operation_from_wire(reference._ops_archive[version]))
            version += 1
            stores[version] = current.clone()
        return stores

    def classify_accepted_reads(self) -> dict[str, Any]:
        """Compare every accepted read against trusted history.

        Returns counts plus the individual wrong acceptances.  A read is
        *correct* when its accepted result hash equals the hash of the
        trusted re-execution at the accepted version -- the same check the
        auditor performs online.
        """
        stores = self.trusted_version_stores()
        cache: dict[tuple[int, str], str] = {}
        correct = 0
        wrong: list[dict[str, Any]] = []
        for client in self.clients:
            for record in client.accepted_log:
                key = (record.version, sha1_hex(record.query_wire))
                trusted_hash = cache.get(key)
                if trusted_hash is None:
                    store = stores.get(record.version)
                    if store is None:
                        continue  # version beyond trusted history
                    query = operation_from_wire(record.query_wire)
                    assert isinstance(query, ReadQuery)
                    trusted_hash = sha1_hex(store.execute_read(query).result)
                    cache[key] = trusted_hash
                if constant_time_equals(record.result_hash, trusted_hash):
                    correct += 1
                else:
                    wrong.append({
                        "client": record.request_id.split(":")[0],
                        "request_id": record.request_id,
                        "version": record.version,
                        "double_checked": record.double_checked,
                        "slaves": record.slave_ids,
                    })
        return {
            "accepted_total": correct + len(wrong),
            "accepted_correct": correct,
            "accepted_wrong": len(wrong),
            "wrong_records": wrong,
        }

    def check_consistency_window(self, slack: float = 1e-9) -> list[dict]:
        """Verify the paper's max_latency guarantee over the whole run.

        Section 3.1: "a client is guaranteed that once max_latency time
        has elapsed since committing a write, no other client will accept
        a read that is not dependent on that write."  Concretely: a read
        accepted at version ``v`` is a violation if some version ``v+1``
        was committed more than ``max_latency`` before the acceptance
        time.  Returns the (ideally empty) list of violations.
        """
        commit_times = self.masters[0].commit_times
        bound = self.config.effective_client_max_latency()
        violations: list[dict] = []
        for client in self.clients:
            client_bound = client.max_latency
            for record in client.accepted_log:
                next_commit = commit_times.get(record.version + 1)
                if next_commit is None:
                    continue  # read was at the newest version
                if record.accepted_at > next_commit + max(bound, client_bound) + slack:
                    violations.append({
                        "client": client.node_id,
                        "request_id": record.request_id,
                        "version": record.version,
                        "accepted_at": record.accepted_at,
                        "next_commit_at": next_commit,
                    })
        return violations

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """One-stop run summary for benchmarks and examples."""
        # Canonical-cache traffic is process-global (verify-cache traffic
        # already lands on this registry via per-node KeyPair metrics);
        # publish this run's share as gauge counters.  Snapshot before the
        # offline oracle below so its hashing is not charged to the run.
        current = fastpath.stats()
        classification = self.classify_accepted_reads()
        for name in ("canonical_cache_hits", "canonical_cache_misses"):
            self.metrics.gauge(
                name, current[name] - self._fastpath_baseline[name])
        return {
            "time": self.now,
            "counters": self.metrics.snapshot(),
            "classification": {k: v for k, v in classification.items()
                               if k != "wrong_records"},
            "auditor": {
                "pledges_received": sum(a.pledges_received
                                        for a in self.auditors),
                "pledges_audited": sum(a.pledges_audited
                                       for a in self.auditors),
                "detections": sum(a.detections for a in self.auditors),
                "cache_hit_rate": self.auditor.cache_hit_rate(),
                "version": self.auditor.version,
            },
            "versions": {m.node_id: m.version for m in self.masters},
            "failures": {
                "crashes": sum(1 for event in self.failures.log
                               if event.kind == "crash"),
                "recoveries": sum(1 for event in self.failures.log
                                  if event.kind == "recover"),
                "events": [
                    {"at": round(event.at, 3), "node": event.node_id,
                     "kind": event.kind}
                    for event in self.failures.log
                ],
            },
        }

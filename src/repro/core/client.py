"""Clients: the read/write protocol from the consumer side.

Setup phase (Section 2): query the directory for master certificates,
verify them against the content public key (known a priori, e.g. embedded
in the content identifier), connect to one master, receive a slave
assignment (certified slave keys plus the auditor's address).

Read protocol (Sections 3.2-3.4), per read:

1. send the query to the assigned slave(s) -- ``read_quorum`` of them in
   the Section 4 variant;
2. on each reply, verify: result hash matches the pledge, the slave's
   signature on the pledge, the master's signature on the version stamp,
   and the stamp's age against ``max_latency`` (stale answers are dropped
   and retried);
3. with probability ``p`` double-check against the master: a hash
   mismatch at the same version is immediate discovery -- forward the
   incriminating pledge as an accusation, await reassignment, re-issue
   the read;
4. otherwise forward the pledge to the auditor *and only then* accept
   (Section 3.4: "clients accept read results only after they have
   forwarded the corresponding pledges to the auditor").

Security levels (Section 4): pass ``level=`` to
:meth:`Client.submit_read`; level probabilities come from
``config.security_levels`` and a level with probability 1.0 is executed
only on the trusted master ("execute only on trusted hosts").

Every accepted read is logged with its result hash and version so the
harness can classify correctness offline against trusted history.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only (obs is optional)
    from repro.obs.spans import Span

from repro.content.queries import Operation, ReadQuery, WriteOp
from repro.core.config import ProtocolConfig
from repro.core.messages import (
    Accusation,
    AuditSubmission,
    ClientHello,
    DirectoryListing,
    DirectoryLookup,
    DoubleCheckReply,
    DoubleCheckRequest,
    ExclusionNotice,
    ReadReply,
    ReadRequest,
    SetupFailed,
    SlaveAssignment,
    WriteReply,
    WriteRequest,
)
from repro.crypto.certificates import Certificate, CertificateError
from repro.crypto.hashing import constant_time_equals, sha1_hex
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import PublicKey, new_signer, verify_many
from repro.metrics import MetricsRegistry
from repro.sim.network import Network, Node
from repro.sim.simulator import EventHandle, Simulator


@dataclass
class AcceptedRead:
    """Post-run classification record for one accepted read."""

    request_id: str
    query_wire: Any
    result_hash: str
    version: int
    accepted_at: float
    double_checked: bool
    slave_ids: tuple[str, ...]


@dataclass
class _ReadAttempt:
    request_id: str
    query_wire: Any
    level: str | None
    probability: float
    callback: Callable[[dict], None] | None
    quorum: int
    started_at: float
    retries: int = 0
    dc_retries: int = 0
    state: str = "waiting_slaves"
    replies: dict[str, ReadReply] = field(default_factory=dict)
    timer: EventHandle | None = None
    #: Root tracing span (None when tracing is off or unsampled).
    span: "Span | None" = None
    #: Open double-check child span, ended on reply/timeout.
    dc_span: "Span | None" = None


@dataclass
class _WriteAttempt:
    request_id: str
    op_wire: Any
    callback: Callable[[dict], None] | None
    started_at: float
    retries: int = 0
    timer: EventHandle | None = None
    #: Root tracing span (None when tracing is off or unsampled).
    span: "Span | None" = None


class Client(Node):
    """One data consumer."""

    def __init__(self, node_id: str, simulator: Simulator, network: Network,
                 config: ProtocolConfig, directory_id: str,
                 owner_public_key: PublicKey, metrics: MetricsRegistry,
                 double_check_override: float | None = None,
                 max_latency_override: float | None = None,
                 lookup_fingerprint: str | None = None) -> None:
        super().__init__(node_id, simulator, network)
        self.config = config
        self.metrics = metrics
        self.directory_id = directory_id
        self.owner_public_key = owner_public_key
        #: Directory index queried during setup.  Defaults to the
        #: content-key fingerprint; sharded clients pass their shard's
        #: derived fingerprint (certificates under it are still signed
        #: with the content key, so verification is unchanged).
        self.lookup_fingerprint = (lookup_fingerprint
                                   if lookup_fingerprint is not None
                                   else _fingerprint(owner_public_key))
        #: Hook for envelope-level extensions (the shard router): called
        #: with unrecognised messages; returning True consumes them.
        self.on_unhandled: Callable[[str, Any], bool] | None = None
        self.keys = KeyPair(node_id, new_signer(
            "hmac", rng=simulator.fork_rng(f"keys:{node_id}")),
            metrics=metrics)
        self.rng = simulator.fork_rng(f"client:{node_id}")
        #: "Greedy" clients override the honest probability (Section 3.3);
        #: slow clients may relax their own freshness bound (Section 3.2).
        self.double_check_override = double_check_override
        self.max_latency = (max_latency_override
                            if max_latency_override is not None
                            else config.effective_client_max_latency())

        self.master_certs: dict[str, Certificate] = {}
        self.master_id: str | None = None
        self.slave_certs: dict[str, Certificate] = {}
        self.assigned_slaves: tuple[str, ...] = ()
        self.auditor_id: str = ""
        self.ready = False
        self._setup_in_progress = False
        # "The closest master": modelled as a stable per-client preference
        # (hash-spread across the master set), advanced on unresponsiveness.
        self._master_preference = int(sha1_hex(node_id)[:4], 16)
        self._request_counter = itertools.count()
        self._reads: dict[str, _ReadAttempt] = {}
        self._writes: dict[str, _WriteAttempt] = {}
        self._queued: list[tuple[Operation, str | None,
                                 Callable[[dict], None] | None]] = []
        self.accepted_log: list[AcceptedRead] = []
        #: Accepted reads later implicated by an exclusion (Section 3.5's
        #: delayed discovery: "the harm may be undone, by rolling back
        #: the client to the state before that particular read").
        self.tainted_reads: list[AcceptedRead] = []
        #: Application rollback hook, invoked once per tainted read.
        self.rollback_handler: Callable[[AcceptedRead], None] | None = None
        self.last_result: Any = None

    # -- lifecycle / setup phase (Section 2) -----------------------------

    def start(self) -> None:
        self._begin_setup()

    def _begin_setup(self) -> None:
        if self._setup_in_progress:
            return
        self._setup_in_progress = True
        self.ready = False
        self.metrics.incr("client_setups")
        self.send(self.directory_id, DirectoryLookup(
            content_key_fingerprint=self.lookup_fingerprint))
        self.after(self.config.request_timeout, self._setup_timeout)

    def _setup_timeout(self) -> None:
        if self.ready or not self._setup_in_progress:
            return
        self._setup_in_progress = False
        self._master_preference += 1  # try a different master next time
        self.metrics.incr("client_setup_timeouts")
        self._begin_setup()

    def _handle_listing(self, listing: DirectoryListing) -> None:
        if self.ready:
            return
        verified: list[Certificate] = []
        for cert in listing.certificates:
            try:
                cert.verify(self.keys, self.owner_public_key)
            except CertificateError:
                self.metrics.incr("client_bad_master_certs")
                continue
            verified.append(cert)
        if not verified:
            self._setup_in_progress = False
            self.metrics.incr("client_setup_failed")
            return
        self.master_certs = {c.subject_id: c for c in verified}
        ordered = sorted(self.master_certs)
        # "Selects one master (the closest one for example)": modelled as a
        # stable preference index, advanced when a master stops answering.
        choice = ordered[self._master_preference % len(ordered)]
        self.master_id = choice
        self.send(choice, ClientHello(client_id=self.node_id))

    def _handle_assignment(self, assignment: SlaveAssignment) -> None:
        slaves: list[str] = []
        for cert in assignment.slave_certificates:
            issuer_key = None
            issuer_cert = self.master_certs.get(cert.issuer_id)
            if issuer_cert is not None:
                issuer_key = issuer_cert.subject_public_key
            if issuer_key is None:
                self.metrics.incr("client_bad_slave_certs")
                continue
            try:
                cert.verify(self.keys, issuer_key)
            except CertificateError:
                self.metrics.incr("client_bad_slave_certs")
                continue
            self.slave_certs[cert.subject_id] = cert
            slaves.append(cert.subject_id)
        if not slaves:
            self._setup_in_progress = False
            self.metrics.incr("client_setup_failed")
            return
        self.assigned_slaves = tuple(slaves)
        self.auditor_id = assignment.auditor_id
        self.ready = True
        self._setup_in_progress = False
        self.metrics.incr("client_setup_completed")
        queued, self._queued = self._queued, []
        for op, level, callback in queued:
            self.submit(op, level=level, callback=callback)

    # -- public operation API ---------------------------------------------

    def submit(self, op: Operation, level: str | None = None,
               callback: Callable[[dict], None] | None = None) -> None:
        """Submit a read query or write operation."""
        if isinstance(op, ReadQuery):
            self.submit_read(op, level=level, callback=callback)
        elif isinstance(op, WriteOp):
            self.submit_write(op, callback=callback)
        else:
            raise TypeError(f"cannot submit {type(op).__name__}")

    def submit_read(self, query: ReadQuery, level: str | None = None,
                    callback: Callable[[dict], None] | None = None) -> None:
        if not self.ready:
            self._queued.append((query, level, callback))
            self._begin_setup()
            return
        probability = self._double_check_probability(level)
        request_id = f"{self.node_id}:r{next(self._request_counter)}"
        attempt = _ReadAttempt(
            request_id=request_id,
            query_wire=query.to_wire(),
            level=level,
            probability=probability,
            callback=callback,
            quorum=len(self.assigned_slaves),
            started_at=self.now,
        )
        self._reads[request_id] = attempt
        self.metrics.incr("reads_submitted")
        # Probability 1.0 *by security level* means "execute only on
        # trusted hosts" (Section 4).  A greedy client's override of 1.0
        # is different: it still reads from its slave, then abuses the
        # double-check quota (Section 3.3).
        obs = self.simulator.obs
        if obs is not None:
            attempt.span = obs.trace(self.node_id, "client.read",
                                     request_id=request_id,
                                     level=level or "default")
        route = (self._read_on_master
                 if probability >= 1.0 and self.double_check_override is None
                 else self._send_to_slaves)
        if obs is not None and attempt.span is not None:
            with obs.activation(attempt.span):
                route(attempt)
        else:
            route(attempt)

    def submit_write(self, op: WriteOp,
                     callback: Callable[[dict], None] | None = None) -> None:
        if not self.ready:
            self._queued.append((op, None, callback))
            self._begin_setup()
            return
        request_id = f"{self.node_id}:w{next(self._request_counter)}"
        attempt = _WriteAttempt(request_id=request_id, op_wire=op.to_wire(),
                                callback=callback, started_at=self.now)
        self._writes[request_id] = attempt
        self.metrics.incr("writes_submitted")
        obs = self.simulator.obs
        if obs is not None:
            attempt.span = obs.trace(self.node_id, "client.write",
                                     request_id=request_id)
        if obs is not None and attempt.span is not None:
            with obs.activation(attempt.span):
                self._send_write(attempt)
        else:
            self._send_write(attempt)

    def _double_check_probability(self, level: str | None) -> float:
        if self.double_check_override is not None:
            return self.double_check_override
        if level is None:
            return self.config.double_check_probability
        try:
            return self.config.security_levels[level]
        except KeyError:
            raise ValueError(
                f"unknown security level {level!r}; configured: "
                f"{sorted(self.config.security_levels)}"
            ) from None

    # -- read path ------------------------------------------------------------

    def _send_to_slaves(self, attempt: _ReadAttempt) -> None:
        attempt.state = "waiting_slaves"
        attempt.replies.clear()
        request = ReadRequest(client_id=self.node_id,
                              request_id=attempt.request_id,
                              query_wire=attempt.query_wire)
        for slave in self.assigned_slaves:
            self.send(slave, request)
        attempt.quorum = len(self.assigned_slaves)
        attempt.timer = self.after(self.config.request_timeout,
                                   self._read_timeout, attempt.request_id)

    def _read_on_master(self, attempt: _ReadAttempt) -> None:
        attempt.state = "master_read"
        self.metrics.incr("sensitive_reads")
        assert self.master_id is not None
        self.send(self.master_id, DoubleCheckRequest(
            client_id=self.node_id, request_id=attempt.request_id,
            query_wire=attempt.query_wire, want_result=True))
        attempt.timer = self.after(self.config.request_timeout,
                                   self._read_timeout, attempt.request_id)

    def _handle_read_reply(self, slave_id: str, reply: ReadReply) -> None:
        attempt = self._reads.get(reply.request_id)
        if attempt is None or attempt.state != "waiting_slaves":
            return
        if slave_id in attempt.replies:
            return
        attempt.replies[slave_id] = reply
        if len(attempt.replies) == attempt.quorum:
            self._evaluate_replies(attempt)

    def _evaluate_replies(self, attempt: _ReadAttempt) -> None:
        _cancel(attempt.timer)
        obs = self.simulator.obs
        if obs is not None:
            with obs.child_span(self.node_id, "read.verify",
                                request_id=attempt.request_id,
                                quorum=attempt.quorum) as vspan:
                valid = self._verify_replies(attempt)
                if vspan is not None:
                    vspan.attrs["valid"] = len(valid)
        else:
            valid = self._verify_replies(attempt)
        if len(valid) < attempt.quorum:
            # At least one reply was stale / out-of-sync / malformed: the
            # paper's answer is drop and retry (Section 3.2).
            self._retry_read(attempt)
            return
        hashes = {reply.pledge.result_hash for reply in valid.values()}
        versions = {reply.pledge.stamp.version for reply in valid.values()}
        if len(hashes) > 1 or len(versions) > 1:
            # Quorum variant: disagreement forces a double-check --
            # "if not all answers match, the client automatically
            # double-checks, since at least one of the slaves has to be
            # malicious" (Section 4).
            self.metrics.incr("quorum_disagreements")
            self._start_double_check(attempt, forced=True)
            return
        if self.rng.random() < attempt.probability:
            self._start_double_check(attempt, forced=False)
        else:
            self._accept_via_auditor(attempt)

    def _verify_replies(self, attempt: _ReadAttempt) -> dict[str, ReadReply]:
        self._prefetch_verifications(attempt)
        valid: dict[str, ReadReply] = {}
        for slave_id, reply in attempt.replies.items():
            verdict = self._validate_reply(slave_id, reply)
            self.metrics.incr(f"read_reply_{verdict}")
            if verdict == "ok":
                valid[slave_id] = reply
        return valid

    def _prefetch_verifications(self, attempt: _ReadAttempt) -> None:
        """Batch-verify the quorum's signatures before per-reply checks.

        Collects every pledge and stamp signature in the attempt and
        verifies them as one group (:func:`repro.crypto.signatures.verify_many`:
        RSA replies sharing a key cost roughly one exponentiation).  The
        verdicts land in the process-wide verify cache under the exact
        keys :meth:`_validate_reply`'s individual checks use, so the
        per-reply logic below is unchanged and still authoritative --
        this only prepays its crypto.
        """
        if len(attempt.replies) < 2:
            return
        triples = []
        for slave_id, reply in attempt.replies.items():
            pledge = reply.pledge
            if pledge is None:
                continue
            cert = self.slave_certs.get(slave_id)
            if cert is not None:
                triples.append((cert.subject_public_key,
                                pledge.signed_payload(), pledge.signature))
            master_cert = self.master_certs.get(pledge.stamp.master_id)
            if master_cert is not None:
                triples.append((master_cert.subject_public_key,
                                pledge.stamp.signed_payload(),
                                pledge.stamp.signature))
        if len(triples) > 1:
            verify_many(triples, metrics=self.metrics)

    def _validate_reply(self, slave_id: str, reply: ReadReply) -> str:
        if not reply.in_sync or reply.pledge is None:
            return "out_of_sync"
        pledge = reply.pledge
        if pledge.slave_id != slave_id:
            return "bad_pledge"
        # 0. Binding: the pledge must commit to *this* request.  Without
        #    these checks a malicious slave could answer query A with a
        #    perfectly valid (result, pledge) pair for query B -- every
        #    other check would pass and the audit of pledge B would come
        #    back clean.  The pledge carries "a copy of the request"
        #    (Section 3.2) exactly so the client can pin it.
        attempt = self._reads.get(reply.request_id)
        if attempt is None:
            return "bad_pledge"
        if pledge.request_id != reply.request_id:
            return "bad_pledge"
        if pledge.query_wire != attempt.query_wire:
            return "bad_pledge"
        # 1. Result integrity: hash(result) must equal the pledged hash.
        if not constant_time_equals(sha1_hex(reply.result),
                                    pledge.result_hash):
            return "hash_mismatch"
        # 2. Slave signature over the pledge.
        cert = self.slave_certs.get(slave_id)
        if cert is None or not pledge.verify(self.keys,
                                             cert.subject_public_key):
            return "bad_signature"
        # 3. Master signature over the version stamp.
        master_cert = self.master_certs.get(pledge.stamp.master_id)
        if master_cert is None or not pledge.stamp.verify(
                self.keys, master_cert.subject_public_key):
            return "bad_stamp"
        # 4. Freshness: "the client makes sure the time-stamp is not older
        #    than max_latency."
        if pledge.stamp.age(self.now) >= self.max_latency:
            return "stale"
        return "ok"

    def _start_double_check(self, attempt: _ReadAttempt,
                            forced: bool) -> None:
        attempt.state = "double_checking"
        self.metrics.incr("double_checks_sent")
        if forced:
            self.metrics.incr("double_checks_forced")
        obs = self.simulator.obs
        if obs is not None and attempt.span is not None:
            attempt.dc_span = obs.begin(
                self.node_id, "read.double_check",
                parent=obs.current or attempt.span, forced=forced)
        assert self.master_id is not None
        self.send(self.master_id, DoubleCheckRequest(
            client_id=self.node_id, request_id=attempt.request_id,
            query_wire=attempt.query_wire))
        attempt.timer = self.after(self.config.request_timeout,
                                   self._double_check_timeout,
                                   attempt.request_id)

    def _handle_double_check_reply(self, reply: DoubleCheckReply) -> None:
        attempt = self._reads.get(reply.request_id)
        if attempt is None:
            return
        if attempt.state == "master_read":
            # Sensitive read executed only on the trusted master.
            _cancel(attempt.timer)
            self._finish_read(attempt, result=reply.result,
                              result_hash=reply.result_hash,
                              version=reply.version, double_checked=True,
                              slave_ids=())
            return
        if attempt.state != "double_checking":
            return
        _cancel(attempt.timer)
        obs = self.simulator.obs
        if obs is not None and attempt.dc_span is not None:
            obs.end(attempt.dc_span, outcome="reply",
                    version=reply.version)
            attempt.dc_span = None
        matching: list[tuple[str, ReadReply]] = []
        mismatching: list[tuple[str, ReadReply]] = []
        for slave_id, slave_reply in attempt.replies.items():
            pledge = slave_reply.pledge
            if pledge is None:
                continue
            if constant_time_equals(pledge.result_hash, reply.result_hash):
                matching.append((slave_id, slave_reply))
            elif pledge.stamp.version == reply.version:
                mismatching.append((slave_id, slave_reply))
            else:
                # Version skew: master committed a write between the
                # slave's answer and the double-check; inconclusive.
                self.metrics.incr("double_checks_inconclusive")
        if mismatching:
            # Caught red-handed (immediate discovery, Section 3.5).
            for slave_id, slave_reply in mismatching:
                self.metrics.incr("immediate_detections")
                if obs is not None:
                    obs.event(self.node_id, "client.accuse",
                              slave=slave_id, discovery="immediate")
                assert self.master_id is not None
                self.send(self.master_id, Accusation(
                    pledge=slave_reply.pledge, accuser_id=self.node_id,
                    discovery="immediate"))
            attempt.state = "await_reassign"
            # Re-issued once the master reassigns us (ExclusionNotice), or
            # after a timeout if the accusation was dismissed.
            attempt.timer = self.after(self.config.request_timeout,
                                       self._reissue_after_accusation,
                                       attempt.request_id)
            return
        if not matching:
            # Every slave answer was from a different version; retry.
            self._retry_read(attempt)
            return
        if not self._still_fresh(attempt):
            self.metrics.incr("reads_stale_at_accept")
            self._retry_read(attempt)
            return
        slave_ids = tuple(slave_id for slave_id, _reply in matching)
        first_reply = matching[0][1]
        self.metrics.incr("double_checks_confirmed")
        self._finish_read(attempt, result=first_reply.result,
                          result_hash=first_reply.pledge.result_hash,
                          version=first_reply.pledge.stamp.version,
                          double_checked=True, slave_ids=slave_ids)

    def _accept_via_auditor(self, attempt: _ReadAttempt) -> None:
        """Forward pledges to the auditor, then accept (Section 3.4)."""
        if not self._still_fresh(attempt):
            # The reply was fresh when validated but aged past max_latency
            # while we waited (e.g. on a timed-out double-check).  Accepting
            # now would breach the inconsistency window; retry instead.
            self.metrics.incr("reads_stale_at_accept")
            self._retry_read(attempt)
            return
        slave_ids = []
        for slave_id, reply in attempt.replies.items():
            assert reply.pledge is not None
            slave_ids.append(slave_id)
            if self.auditor_id:
                self.send(self.auditor_id,
                          AuditSubmission(pledge=reply.pledge))
        first = next(iter(attempt.replies.values()))
        assert first.pledge is not None
        self._finish_read(attempt, result=first.result,
                          result_hash=first.pledge.result_hash,
                          version=first.pledge.stamp.version,
                          double_checked=False,
                          slave_ids=tuple(slave_ids))

    def _still_fresh(self, attempt: _ReadAttempt) -> bool:
        """Re-check every held pledge's stamp age at acceptance time."""
        for reply in attempt.replies.values():
            if reply.pledge is None:
                return False
            if reply.pledge.stamp.age(self.now) >= self.max_latency:
                return False
        return True

    def _finish_read(self, attempt: _ReadAttempt, result: Any,
                     result_hash: str, version: int, double_checked: bool,
                     slave_ids: tuple[str, ...]) -> None:
        del self._reads[attempt.request_id]
        attempt.state = "done"
        self.last_result = result
        latency = self.now - attempt.started_at
        self.metrics.incr("reads_accepted")
        self.metrics.observe("read_latency", latency)
        obs = self.simulator.obs
        if obs is not None:
            obs.end(attempt.span, status="accepted", version=version,
                    double_checked=double_checked,
                    retries=attempt.retries)
        record = AcceptedRead(
            request_id=attempt.request_id,
            query_wire=attempt.query_wire,
            result_hash=result_hash,
            version=version,
            accepted_at=self.now,
            double_checked=double_checked,
            slave_ids=slave_ids,
        )
        self.accepted_log.append(record)
        if attempt.callback is not None:
            attempt.callback({"status": "accepted", "result": result,
                              "latency": latency, "version": version,
                              "double_checked": double_checked})

    # -- retries / failures ------------------------------------------------------

    def _retry_read(self, attempt: _ReadAttempt) -> None:
        attempt.retries += 1
        self.metrics.incr("read_retries")
        if attempt.retries > self.config.max_read_retries:
            self._fail_read(attempt, reason="retries exhausted")
            return
        if attempt.retries == self.config.max_read_retries:
            # Persistent invalid/stale replies from the current slave:
            # assume it is broken (e.g. garbled signatures) and go back
            # through the setup phase for a fresh assignment.
            self.ready = False
            self._queued.append((_rebuild_query(attempt), attempt.level,
                                 attempt.callback))
            del self._reads[attempt.request_id]
            self.metrics.incr("reads_resetup")
            self._begin_setup()
            return
        # Small backoff so a just-stale slave has time to resync.
        self.after(self.config.keepalive_interval,
                   self._resend_read, attempt.request_id)

    def _resend_read(self, request_id: str) -> None:
        attempt = self._reads.get(request_id)
        if attempt is None or attempt.state == "done":
            return
        # Same routing rule as submit_read: only a *security level* of
        # 1.0 routes to the master; a greedy client's override keeps the
        # slave path (it merely over-checks).
        if attempt.probability >= 1.0 and self.double_check_override is None:
            self._read_on_master(attempt)
        else:
            self._send_to_slaves(attempt)

    def _read_timeout(self, request_id: str) -> None:
        attempt = self._reads.get(request_id)
        if attempt is None or attempt.state not in ("waiting_slaves",
                                                    "master_read"):
            return
        if attempt.state == "waiting_slaves" and attempt.replies:
            # Partial quorum: evaluate what arrived (missing slaves count
            # as invalid, forcing a retry unless quorum was 1 and answered).
            attempt.quorum = len(attempt.replies)
            self._evaluate_replies(attempt)
            return
        self.metrics.incr("read_timeouts")
        attempt.retries += 1
        if attempt.retries > self.config.max_read_retries:
            self._fail_read(attempt, reason="timeout")
            return
        if attempt.retries == self.config.max_read_retries:
            # Penultimate attempt: assume our master/slave died; re-setup.
            self.ready = False
            self._queued.append((_rebuild_query(attempt), attempt.level,
                                 attempt.callback))
            del self._reads[attempt.request_id]
            self._begin_setup()
            return
        self._resend_read(request_id)

    def _double_check_timeout(self, request_id: str) -> None:
        attempt = self._reads.get(request_id)
        if attempt is None or attempt.state != "double_checking":
            return
        attempt.dc_retries += 1
        self.metrics.incr("double_check_timeouts")
        obs = self.simulator.obs
        if obs is not None and attempt.dc_span is not None:
            obs.end(attempt.dc_span, outcome="timeout")
            attempt.dc_span = None
        if attempt.dc_retries <= 1:
            self._start_double_check(attempt, forced=False)
            return
        # The master is unresponsive (or throttling us as greedy).  Fall
        # back to the audit path rather than hanging the read forever.
        self._accept_via_auditor(attempt)

    def _reissue_after_accusation(self, request_id: str) -> None:
        attempt = self._reads.get(request_id)
        if attempt is None or attempt.state != "await_reassign":
            return
        self._resend_read(request_id)

    def _fail_read(self, attempt: _ReadAttempt, reason: str) -> None:
        del self._reads[attempt.request_id]
        attempt.state = "done"
        self.metrics.incr("reads_failed")
        obs = self.simulator.obs
        if obs is not None:
            obs.end(attempt.span, status="failed", reason=reason,
                    retries=attempt.retries)
        if attempt.callback is not None:
            attempt.callback({"status": "failed", "reason": reason})

    # -- write path --------------------------------------------------------------

    def _send_write(self, attempt: _WriteAttempt) -> None:
        assert self.master_id is not None
        self.send(self.master_id, WriteRequest(
            client_id=self.node_id, request_id=attempt.request_id,
            op_wire=attempt.op_wire))
        attempt.timer = self.after(self.config.request_timeout * 3,
                                   self._write_timeout, attempt.request_id)

    def _handle_write_reply(self, reply: WriteReply) -> None:
        attempt = self._writes.pop(reply.request_id, None)
        if attempt is None:
            return
        _cancel(attempt.timer)
        latency = self.now - attempt.started_at
        if reply.committed:
            self.metrics.incr("writes_committed")
            self.metrics.observe("write_latency", latency)
        else:
            self.metrics.incr("writes_rejected")
        obs = self.simulator.obs
        if obs is not None:
            obs.end(attempt.span,
                    status="committed" if reply.committed else "rejected",
                    version=reply.version, retries=attempt.retries)
        if attempt.callback is not None:
            attempt.callback({"status": "committed" if reply.committed
                              else "rejected",
                              "version": reply.version,
                              "latency": latency,
                              "reason": reply.reason})

    def _write_timeout(self, request_id: str) -> None:
        attempt = self._writes.get(request_id)
        if attempt is None:
            return
        attempt.retries += 1
        self.metrics.incr("write_timeouts")
        if attempt.retries > 2:
            del self._writes[request_id]
            self.metrics.incr("writes_failed")
            obs = self.simulator.obs
            if obs is not None:
                obs.end(attempt.span, status="failed", reason="timeout",
                        retries=attempt.retries)
            if attempt.callback is not None:
                attempt.callback({"status": "failed", "reason": "timeout"})
            return
        # Master may have crashed: redo setup against another master, then
        # resubmit (write dedup is the master's job via request ids; in
        # this model resubmission after a commit would double-apply, so we
        # only resubmit when no reply ever arrived -- at-most-once).
        self.ready = False
        self._master_preference += 1
        self._begin_setup()
        self.after(self.config.request_timeout, self._send_write, attempt)

    # -- reassignment (Section 3.5) -----------------------------------------------

    def _handle_exclusion(self, notice: ExclusionNotice) -> None:
        self.metrics.incr("client_reassignments")
        self._install_assignment(notice.replacement)
        # Delayed-discovery damage control: any read this client accepted
        # on the now-excluded slave's word alone is suspect.  Surface it
        # to the application for rollback.
        for record in self.accepted_log:
            if (notice.excluded_slave_id in record.slave_ids
                    and not record.double_checked
                    and record not in self.tainted_reads):
                self.tainted_reads.append(record)
                self.metrics.incr("reads_tainted")
                if self.rollback_handler is not None:
                    self.rollback_handler(record)
        # Re-issue any read that was waiting on the excluded slave.
        for attempt in list(self._reads.values()):
            if attempt.state in ("await_reassign", "waiting_slaves"):
                _cancel(attempt.timer)
                self.metrics.incr("reads_reissued_after_exclusion")
                self._resend_read(attempt.request_id)

    def rehome(self) -> None:
        """Drop the cached assignment and redo setup from the directory.

        The shard router calls this when the client's shard moved to a
        different master group (``WrongShard`` redirect or a new map
        epoch).  Pending reads are requeued and re-issued against the
        new home; pending writes are deliberately left on their own
        timeout path, preserving at-most-once semantics (resubmitting a
        write that may have committed would double-apply).
        """
        self.ready = False
        self._setup_in_progress = False
        self.master_certs = {}
        self.slave_certs = {}
        self.assigned_slaves = ()
        self.master_id = None
        for attempt in list(self._reads.values()):
            _cancel(attempt.timer)
            self._queued.append((_rebuild_query(attempt), attempt.level,
                                 attempt.callback))
            del self._reads[attempt.request_id]
        self.metrics.incr("client_rehomes")
        self._begin_setup()

    def _install_assignment(self, assignment: SlaveAssignment) -> None:
        slaves = []
        for cert in assignment.slave_certificates:
            issuer = self.master_certs.get(cert.issuer_id)
            if issuer is None:
                continue
            try:
                cert.verify(self.keys, issuer.subject_public_key)
            except CertificateError:
                self.metrics.incr("client_bad_slave_certs")
                continue
            self.slave_certs[cert.subject_id] = cert
            slaves.append(cert.subject_id)
        if slaves:
            self.assigned_slaves = tuple(slaves)
        if assignment.auditor_id:
            self.auditor_id = assignment.auditor_id

    # -- dispatch --------------------------------------------------------------------

    def on_message(self, src_id: str, message: Any) -> None:
        if isinstance(message, DirectoryListing):
            self._handle_listing(message)
        elif isinstance(message, SlaveAssignment):
            self._handle_assignment(message)
        elif isinstance(message, ReadReply):
            self._handle_read_reply(src_id, message)
        elif isinstance(message, DoubleCheckReply):
            self._handle_double_check_reply(message)
        elif isinstance(message, WriteReply):
            self._handle_write_reply(message)
        elif isinstance(message, ExclusionNotice):
            self._handle_exclusion(message)
        elif isinstance(message, SetupFailed):
            self._setup_in_progress = False
            self.metrics.incr("client_setup_failed")
        elif (self.on_unhandled is not None
                and self.on_unhandled(src_id, message)):
            pass
        else:
            raise TypeError(
                f"client {self.node_id} got unexpected "
                f"{type(message).__name__} from {src_id}"
            )


def _cancel(timer: EventHandle | None) -> None:
    if timer is not None:
        timer.cancel()


def _fingerprint(public_key: PublicKey) -> str:
    fingerprint = getattr(public_key, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    return sha1_hex(repr(public_key))


def _rebuild_query(attempt: _ReadAttempt) -> ReadQuery:
    from repro.content.queries import operation_from_wire

    query = operation_from_wire(attempt.query_wire)
    assert isinstance(query, ReadQuery)
    return query

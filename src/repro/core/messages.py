"""The wire protocol: every message type exchanged between principals.

The load-bearing structures are :class:`VersionStamp` (the signed,
timestamped ``content_version`` from Section 3.1) and :class:`Pledge`
(Section 3.2's "pledge" packet).  Both carry their signatures alongside a
canonical signed payload, so any party holding the right public key can
verify them -- which is what makes a pledge "an irrefutable proof" of a
slave's dishonesty (Section 3.3) and lets clients reject keep-alives a
malicious slave tries to forge.

All other messages are plain envelopes; in the simulation they are Python
objects handed across the network fabric, with ``size_bytes`` charged at
the sender for byte-count accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.content.store import ContentStore
from repro.crypto import fastpath
from repro.crypto.certificates import Certificate
from repro.crypto.hashing import canonical_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import PublicKey, Signature

# ``*_wire`` fields and read results are genuinely dynamic: they carry
# whatever plain-data shape the active content engine serialises, and an
# adversarial slave may substitute arbitrary values.  They stay ``Any``
# on purpose; everything crypto-shaped below is typed precisely.


# -- version stamps (Section 3.1) --------------------------------------


@dataclass(frozen=True, slots=True)
class VersionStamp:
    """A master-signed, timestamped ``content_version`` value.

    Travels in slave updates, keep-alives and pledges.  Clients accept a
    read only if the stamp verifies under a certified master key and is
    younger than ``max_latency``.
    """

    version: int
    timestamp: float
    master_id: str
    signature: Signature
    #: Lazily-filled signed-payload memo.  ``init=False`` keeps it out of
    #: ``__init__`` *and* out of ``dataclasses.replace`` copies, so any
    #: forged/altered stamp starts with an empty cache and must rebuild
    #: (and therefore honestly re-serialise) its own payload.
    _payload_cache: bytes | None = field(default=None, init=False,
                                         compare=False, repr=False)

    @staticmethod
    def _payload(version: int, timestamp: float, master_id: str) -> bytes:
        return canonical_bytes({
            "kind": "version_stamp",
            "version": version,
            "timestamp": timestamp,
            "master_id": master_id,
        })

    def signed_payload(self) -> bytes:
        """The exact bytes this stamp's signature covers.

        Built once per instance on the fast path; every subsequent
        verification of the same stamp object reuses it instead of
        re-canonicalising the fields.
        """
        if fastpath.enabled():
            cached = self._payload_cache
            if cached is not None:
                return cached
            payload = self._payload(self.version, self.timestamp,
                                    self.master_id)
            object.__setattr__(self, "_payload_cache", payload)
            return payload
        return self._payload(self.version, self.timestamp, self.master_id)

    @classmethod
    def make(cls, keys: KeyPair, version: int,
             timestamp: float) -> "VersionStamp":
        payload = cls._payload(version, timestamp, keys.owner_id)
        stamp = cls(version=version, timestamp=timestamp,
                    master_id=keys.owner_id, signature=keys.sign(payload))
        if fastpath.enabled():
            object.__setattr__(stamp, "_payload_cache", payload)
        return stamp

    def verify(self, verifier_keys: KeyPair,
               master_public_key: PublicKey) -> bool:
        return verifier_keys.verify(master_public_key, self.signed_payload(),
                                    self.signature)

    def age(self, now: float) -> float:
        return now - self.timestamp


# -- pledges (Section 3.2) -----------------------------------------------


@dataclass(frozen=True, slots=True)
class Pledge:
    """The slave's signed commitment: request, result hash, version stamp.

    Contains "a copy of the request, the secure hash (SHA-1) of the
    result, and the latest time-stamped content_version value received
    from the master", signed by the slave (Section 3.2).
    """

    query_wire: Any
    result_hash: str
    stamp: VersionStamp
    slave_id: str
    request_id: str
    signature: Signature
    #: Same contract as :attr:`VersionStamp._payload_cache`: never copied
    #: by ``dataclasses.replace``, so tampered pledges re-serialise.
    _payload_cache: bytes | None = field(default=None, init=False,
                                         compare=False, repr=False)

    @staticmethod
    def _payload(query_wire: Any, result_hash: str, stamp: VersionStamp,
                 slave_id: str, request_id: str) -> bytes:
        return canonical_bytes({
            "kind": "pledge",
            "query": query_wire,
            "result_hash": result_hash,
            "stamp_version": stamp.version,
            "stamp_timestamp": stamp.timestamp,
            "stamp_master": stamp.master_id,
            "stamp_signature": repr(stamp.signature),
            "slave_id": slave_id,
            "request_id": request_id,
        })

    def signed_payload(self) -> bytes:
        """The exact bytes this pledge's signature covers (memoised)."""
        if fastpath.enabled():
            cached = self._payload_cache
            if cached is not None:
                return cached
            payload = self._payload(self.query_wire, self.result_hash,
                                    self.stamp, self.slave_id,
                                    self.request_id)
            object.__setattr__(self, "_payload_cache", payload)
            return payload
        return self._payload(self.query_wire, self.result_hash, self.stamp,
                             self.slave_id, self.request_id)

    @classmethod
    def make(cls, keys: KeyPair, query_wire: Any, result_hash: str,
             stamp: VersionStamp, request_id: str) -> "Pledge":
        payload = cls._payload(query_wire, result_hash, stamp,
                               keys.owner_id, request_id)
        pledge = cls(query_wire=query_wire, result_hash=result_hash,
                     stamp=stamp, slave_id=keys.owner_id,
                     request_id=request_id, signature=keys.sign(payload))
        if fastpath.enabled():
            object.__setattr__(pledge, "_payload_cache", payload)
        return pledge

    @classmethod
    def make_many(
        cls, keys: KeyPair,
        specs: "list[tuple[Any, str, VersionStamp, str]]",
    ) -> "list[Pledge]":
        """Construct pledges for several reads with one batch signing.

        ``specs`` holds ``(query_wire, result_hash, stamp, request_id)``
        per read.  Payload bytes and signatures are identical to calling
        :meth:`make` per spec -- batching only amortises the signer's
        per-call setup (HMAC key schedule), it never changes what is
        signed.
        """
        payloads = [cls._payload(query_wire, result_hash, stamp,
                                 keys.owner_id, request_id)
                    for query_wire, result_hash, stamp, request_id in specs]
        signatures = keys.sign_many(payloads)
        caching = fastpath.enabled()
        pledges = []
        for (query_wire, result_hash, stamp, request_id), payload, sig \
                in zip(specs, payloads, signatures):
            pledge = cls(query_wire=query_wire, result_hash=result_hash,
                         stamp=stamp, slave_id=keys.owner_id,
                         request_id=request_id, signature=sig)
            if caching:
                object.__setattr__(pledge, "_payload_cache", payload)
            pledges.append(pledge)
        return pledges

    def verify(self, verifier_keys: KeyPair,
               slave_public_key: PublicKey) -> bool:
        return verifier_keys.verify(slave_public_key, self.signed_payload(),
                                    self.signature)


# -- setup phase (Section 2) ---------------------------------------------


@dataclass(frozen=True, slots=True)
class DirectoryLookup:
    """Client -> directory: list master certificates for a content key."""

    content_key_fingerprint: str


@dataclass(frozen=True, slots=True)
class DirectoryListing:
    """Directory -> client: all master certificates for the content."""

    certificates: tuple[Certificate, ...]


@dataclass(frozen=True, slots=True)
class ClientHello:
    """Client -> chosen master: request a slave assignment."""

    client_id: str


@dataclass(frozen=True, slots=True)
class SlaveAssignment:
    """Master -> client: slave certificate(s) plus the auditor's address.

    ``slave_certificates`` carries ``read_quorum`` entries (one in the
    base protocol).  The auditor id tells the client where to forward
    pledges.
    """

    slave_certificates: tuple[Certificate, ...]
    auditor_id: str


# -- write path (Section 3.1) -----------------------------------------------


@dataclass(frozen=True, slots=True)
class WriteRequest:
    """Client -> master: apply a write operation."""

    client_id: str
    request_id: str
    op_wire: Any


@dataclass(frozen=True, slots=True)
class WriteReply:
    """Master -> client: commit confirmation (or rejection)."""

    request_id: str
    committed: bool
    version: int
    reason: str = ""


@dataclass(frozen=True, slots=True)
class SlaveUpdate:
    """Master -> slave: committed write(s) plus the new signed stamp.

    Sent only after the masters have committed the write ("lazy" update,
    Section 3).  ``ops_wire`` is a batch to allow catch-up after slave
    recovery; in the steady state it holds one write.
    """

    from_version: int
    ops_wire: tuple[Any, ...]
    stamp: VersionStamp


@dataclass(frozen=True, slots=True)
class SlaveSnapshot:
    """Master -> slave: a full state transfer.

    Sent when a slave is so far behind that the incremental op log no
    longer reaches its version (crash longer than ``ops_log_depth``
    writes).  ``store`` is an independent clone at ``stamp.version``.
    """

    store: ContentStore
    stamp: "VersionStamp"


@dataclass(frozen=True, slots=True)
class KeepAlive:
    """Master -> slave: periodic re-signed stamp for the current version."""

    stamp: VersionStamp


@dataclass(frozen=True, slots=True)
class ResyncRequest:
    """Slave -> master: I detected a version gap; resend from ``have``."""

    have_version: int


# -- read path (Sections 3.2-3.3) -----------------------------------------


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """Client -> slave: execute a read query."""

    client_id: str
    request_id: str
    query_wire: Any


@dataclass(frozen=True, slots=True)
class ReadReply:
    """Slave -> client: the result plus the signed pledge.

    ``in_sync=False`` signals the honest-slave refusal from Section 3:
    a slave whose keep-alive is older than ``max_latency`` "should stop
    handling user requests until they are back in sync".
    """

    request_id: str
    result: Any
    pledge: Pledge | None
    in_sync: bool = True


@dataclass(frozen=True, slots=True)
class DoubleCheckRequest:
    """Client -> master: re-execute this query on trusted state."""

    client_id: str
    request_id: str
    query_wire: Any
    pledge: Pledge | None = None
    #: True for Section 4 "sensitive" reads executed only on the master:
    #: the client needs the result itself, not just the hash.
    want_result: bool = False


@dataclass(frozen=True, slots=True)
class DoubleCheckReply:
    """Master -> client: trusted result hash (and result, for sensitive
    reads executed only on the master) at the master's current version."""

    request_id: str
    result_hash: str
    version: int
    result: Any = None
    include_result: bool = False


# -- audit path (Section 3.4) -------------------------------------------------


@dataclass(frozen=True, slots=True)
class AuditSubmission:
    """Client -> auditor: pledge for background verification."""

    pledge: Pledge


# -- corrective action (Section 3.5) -------------------------------------------


@dataclass(frozen=True, slots=True)
class Accusation:
    """Client/auditor -> master: signed evidence of slave misbehaviour."""

    pledge: Pledge
    accuser_id: str
    discovery: str  # "immediate" (double-check) | "audit" (delayed)


@dataclass(frozen=True, slots=True)
class ExclusionNotice:
    """Master -> client: your slave was excluded; here is a new one."""

    excluded_slave_id: str
    replacement: SlaveAssignment


@dataclass(frozen=True, slots=True)
class SetupFailed:
    """Master -> client: cannot serve (no slaves / shutting down)."""

    reason: str


# -- master <-> master broadcast payloads (plain dicts would do, but typed
#    payloads keep delivery handlers explicit) ------------------------------


@dataclass(frozen=True, slots=True)
class BcastWrite:
    """Totally-ordered write submission."""

    origin_master: str
    client_id: str
    request_id: str
    op_wire: Any


@dataclass(frozen=True, slots=True)
class BcastElectAuditor:
    """First delivered election message fixes the auditor set.

    Section 3.4: "If the auditor is over-used, the solution is to either
    add extra auditors, or weaken the security guarantees" -- the set may
    therefore contain several auditors; each client is assigned exactly
    one, so every pledge is audited exactly once.
    """

    auditor_ids: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class BcastSlaveList:
    """Periodic slave-list announcement (enables crash takeover)."""

    master_id: str
    slave_ids: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class BcastExcludeSlave:
    """Totally-ordered exclusion of a proven-malicious slave."""

    slave_id: str
    owning_master: str
    evidence_request_id: str
    discovery: str


@dataclass(frozen=True, slots=True)
class BroadcastWrapper:
    """Envelope distinguishing broadcast-engine traffic on the wire."""

    envelope: Any


@dataclass(slots=True)
class TimestampedPledge:
    """Auditor-side queue entry: pledge plus arrival time (for lag stats)."""

    pledge: Pledge
    received_at: float
    audited: bool = field(default=False)


# -- wire-codec registry hook ---------------------------------------------
#
# Every message type that may cross a real socket, in wire-id order.  The
# position of a class in this tuple IS its wire type id (offset by the
# codec's base id), so the order is append-only: new types go at the end,
# and removing or reordering entries is a wire-format break requiring a
# codec version bump.  ``repro.net.codec`` builds its registry from this
# tuple plus the crypto/broadcast carriers (certificates, broadcast
# envelopes, public keys) that travel inside these messages.

WIRE_MESSAGE_TYPES: tuple[type, ...] = (
    VersionStamp,
    Pledge,
    DirectoryLookup,
    DirectoryListing,
    ClientHello,
    SlaveAssignment,
    WriteRequest,
    WriteReply,
    SlaveUpdate,
    SlaveSnapshot,
    KeepAlive,
    ResyncRequest,
    ReadRequest,
    ReadReply,
    DoubleCheckRequest,
    DoubleCheckReply,
    AuditSubmission,
    Accusation,
    ExclusionNotice,
    SetupFailed,
    BcastWrite,
    BcastElectAuditor,
    BcastSlaveList,
    BcastExcludeSlave,
    BroadcastWrapper,
)

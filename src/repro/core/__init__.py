"""The paper's contribution: secure replication over untrusted slaves.

Module map (one per protocol role or mechanism):

* :mod:`repro.core.config` -- every protocol parameter in one dataclass.
* :mod:`repro.core.messages` -- the wire protocol: pledges, version
  stamps, keep-alives, double-checks, accusations, reassignment.
* :mod:`repro.core.owner` -- the content owner: content key, certificates.
* :mod:`repro.core.directory` -- the public directory of master certs.
* :mod:`repro.core.trusted` -- shared machinery of trusted servers
  (broadcast membership, version history, commit spacing).
* :mod:`repro.core.master` -- master servers: writes, keep-alives, slave
  management, double-checks, greedy-client throttling, corrective action.
* :mod:`repro.core.slave` -- slave servers: read execution, pledge
  signing, lazy state updates, freshness discipline.
* :mod:`repro.core.auditor` -- the elected auditor: lagging re-execution
  of every pledged read, query caching, delayed discovery.
* :mod:`repro.core.client` -- clients: setup phase, read/write protocol,
  probabilistic double-checks, pledge forwarding, retry logic.
* :mod:`repro.core.adversary` -- Byzantine slave behaviour strategies.
* :mod:`repro.core.variants` -- Section 4 variants: security levels and
  multi-slave quorum reads.
* :mod:`repro.core.system` -- deployment builder wiring everything onto
  the simulator.
"""

from repro.core.config import ProtocolConfig
from repro.core.system import ReplicationSystem

__all__ = ["ProtocolConfig", "ReplicationSystem"]

"""Slave servers: untrusted replicas that execute reads.

A slave (Section 2) holds a copy of the content but is "only marginally
trusted".  Honest behaviour, per Sections 3.1-3.2:

* apply lazy state updates from its master strictly in version order,
  requesting a resync when it detects a gap;
* refuse reads while its latest keep-alive stamp is older than
  ``max_latency`` ("if they behave correctly they should stop handling
  user requests until they are back in sync");
* for each read: execute the query, build a pledge containing the
  request, the SHA-1 of the result and the latest master-signed stamp,
  sign the pledge, and return result + pledge.

Byzantine behaviour is injected through an
:class:`~repro.core.adversary.AdversaryStrategy`: the strategy may corrupt
the *result* (the pledge then hashes the corrupted result -- a slave that
pledged one thing and served another would be trivially caught by the
client's own hash check), serve from stale state, or drop requests.  It
can never forge another principal's signature.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.content.queries import ReadQuery, operation_from_wire
from repro.content.store import ContentStore
from repro.core.adversary import AdversaryStrategy, Honest, StaleServe
from repro.core.config import ProtocolConfig
from repro.core.messages import (
    KeepAlive,
    Pledge,
    ReadReply,
    ReadRequest,
    ResyncRequest,
    SlaveSnapshot,
    SlaveUpdate,
    VersionStamp,
)
from repro.core.trusted import WorkQueue
from repro.crypto.certificates import Certificate
from repro.crypto.hashing import sha1_hex
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import PublicKey, new_signer
from repro.metrics import MetricsRegistry
from repro.sim.network import Network, Node
from repro.sim.simulator import Simulator


class SlaveServer(Node):
    """One untrusted replica."""

    def __init__(self, node_id: str, simulator: Simulator, network: Network,
                 config: ProtocolConfig, store: ContentStore,
                 master_certs: dict[str, Certificate],
                 metrics: MetricsRegistry,
                 strategy: AdversaryStrategy | None = None) -> None:
        super().__init__(node_id, simulator, network)
        self.config = config
        self.metrics = metrics
        self.keys = KeyPair(node_id, new_signer(
            config.signer_scheme, rng=simulator.fork_rng(f"keys:{node_id}"),
            rsa_bits=config.rsa_bits), metrics=metrics)
        self.store = store
        self.version = 0
        #: All certified master public keys (from the public directory);
        #: the slave accepts stamps from any trusted master, which is what
        #: makes crash takeover by a different master transparent.
        self.master_keys = {m: c.subject_public_key
                            for m, c in master_certs.items()}
        self.latest_stamp: VersionStamp | None = None
        self._pending_updates: dict[int, SlaveUpdate] = {}
        self.strategy = strategy or Honest()
        if isinstance(self.strategy, StaleServe):
            self.strategy.frozen_store = store.clone()
        self.work = WorkQueue(self)
        self.reads_served = 0
        self.reads_refused_stale = 0
        #: Reads answered but not yet pledged/flushed (batch mode): the
        #: first buffered read schedules a same-tick flush, so every
        #: read arriving in one scheduler tick shares one batch signing
        #: and one reply flush.  See :meth:`_flush_reads`.
        self._pending_reads: list[tuple[str, Any, str, Any, VersionStamp]] = []

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public_key

    # -- message handling ---------------------------------------------------

    def on_message(self, src_id: str, message: Any) -> None:
        if isinstance(message, SlaveUpdate):
            self._handle_update(src_id, message)
        elif isinstance(message, SlaveSnapshot):
            self._handle_snapshot(src_id, message)
        elif isinstance(message, KeepAlive):
            self._handle_keepalive(src_id, message)
        elif isinstance(message, ReadRequest):
            self._handle_read(src_id, message)
        else:
            raise TypeError(
                f"slave {self.node_id} got unexpected "
                f"{type(message).__name__} from {src_id}"
            )

    # -- lazy state updates (Section 3.1) --------------------------------------

    def _handle_update(self, master_id: str, update: SlaveUpdate) -> None:
        if not self._stamp_ok(update.stamp):
            self.metrics.incr("slave_bad_stamps")
            return
        self._pending_updates[update.from_version] = update
        self._apply_ready_updates()
        # Version gap (reordered or lost update): ask the sender to resync.
        if self._pending_updates and min(self._pending_updates) > self.version:
            self.send(master_id, ResyncRequest(have_version=self.version))

    def _apply_ready_updates(self) -> None:
        obs = self.simulator.obs
        mangle = getattr(self.strategy, "mangle_write", None)
        while self.version in self._pending_updates:
            update = self._pending_updates.pop(self.version)
            if obs is not None:
                with obs.child_span(self.node_id, "slave.apply",
                                    from_version=update.from_version) as sp:
                    self._apply_update(update, mangle)
                    if sp is not None:
                        sp.attrs["version"] = self.version
            else:
                self._apply_update(update, mangle)
            self._adopt_stamp(update.stamp)
        # Drop superseded buffered updates.
        for key in [k for k in self._pending_updates if k < self.version]:
            del self._pending_updates[key]

    def _apply_update(self, update: SlaveUpdate, mangle: Any) -> None:
        for op_wire in update.ops_wire:
            op = operation_from_wire(op_wire)
            if mangle is not None:
                op = mangle(op)  # CorruptState adversary
            self.store.apply_write(op)
            self.version += 1

    def _handle_snapshot(self, master_id: str,
                         message: SlaveSnapshot) -> None:
        """Full state transfer: replace everything, adopt the new stamp."""
        if not self._stamp_ok(message.stamp):
            self.metrics.incr("slave_bad_stamps")
            return
        if message.stamp.version <= self.version:
            return  # stale snapshot (raced with an incremental resync)
        self.store = message.store.clone()
        self.version = message.stamp.version
        self.latest_stamp = message.stamp
        self._pending_updates.clear()
        self.metrics.incr("slave_snapshots_installed")
        if isinstance(self.strategy, StaleServe) \
                and self.strategy.frozen_store is None:
            self.strategy.frozen_store = self.store.clone()

    def _handle_keepalive(self, master_id: str, message: KeepAlive) -> None:
        if not self._stamp_ok(message.stamp):
            self.metrics.incr("slave_bad_stamps")
            return
        # Arrival timeline per slave: overload scenarios assert that
        # keep-alives never miss the Section 3.1 freshness window even
        # while a flash crowd is being shed (repro.qos's invariant).
        self.metrics.record(f"keepalive_rx@{self.node_id}", self.now,
                            float(message.stamp.version))
        if message.stamp.version > self.version:
            # We missed at least one update; resync from whoever signed.
            self.send(master_id, ResyncRequest(have_version=self.version))
            return
        if message.stamp.version == self.version:
            self._adopt_stamp(message.stamp)

    def _stamp_ok(self, stamp: VersionStamp) -> bool:
        master_key = self.master_keys.get(stamp.master_id)
        if master_key is None:
            return False
        return stamp.verify(self.keys, master_key)

    def _adopt_stamp(self, stamp: VersionStamp) -> None:
        if stamp.version != self.version:
            return
        if (self.latest_stamp is None
                or stamp.timestamp > self.latest_stamp.timestamp):
            self.latest_stamp = stamp

    def is_fresh(self) -> bool:
        """Can this slave honestly serve reads right now?

        "A slave can handle client requests only if the most recently
        received keep-alive packet is less than max_latency old."
        """
        return (self.latest_stamp is not None
                and self.latest_stamp.age(self.now) < self.config.max_latency)

    # -- read protocol (Section 3.2) ----------------------------------------------

    def _handle_read(self, client_id: str, message: ReadRequest) -> None:
        obs = self.simulator.obs
        if obs is None:
            self._serve_read(client_id, message)
            return
        with obs.child_span(self.node_id, "slave.read",
                            request_id=message.request_id) as span:
            self._serve_read(client_id, message)
            if span is not None:
                span.attrs["version"] = self.version

    def _serve_read(self, client_id: str, message: ReadRequest) -> None:
        query = operation_from_wire(message.query_wire)
        if not isinstance(query, ReadQuery):
            raise TypeError("read request payload must be a read query")
        if self.strategy.should_refuse(query, client_id):
            self.metrics.incr("slave_reads_dropped")
            return
        if not self.is_fresh():
            # Honest refusal: out of sync.  (A malicious slave could answer
            # anyway, but its stale stamp would fail the client's freshness
            # check, so lying here buys the adversary nothing.)
            self.reads_refused_stale += 1
            self.metrics.incr("slave_reads_refused_stale")
            self.send(client_id, ReadReply(request_id=message.request_id,
                                           result=None, pledge=None,
                                           in_sync=False))
            return
        # Answer-substitution attack: execute and pledge a decoy query
        # instead of the requested one (the pledge itself stays honest --
        # valid signature over a truthful result -- just for the wrong
        # query; the client's binding check must reject it).
        pledged_wire = message.query_wire
        substitute = getattr(self.strategy, "substitute_query", None)
        if substitute is not None:
            decoy = substitute(query)
            if decoy is not None:
                query = decoy
                pledged_wire = decoy.to_wire()
                self.metrics.incr("slave_substituted_queries")
        outcome = self.store.execute_read(query)
        served_result = self.strategy.corrupt(query, outcome.result,
                                              self.version, client_id)
        if served_result != outcome.result:
            self.metrics.incr("slave_lies_served")
        assert self.latest_stamp is not None
        self.reads_served += 1
        self.metrics.incr("slave_reads_served")
        if self.config.simulate_service_times:
            service = (outcome.cost_units * self.config.service_time_per_unit
                       + self.config.hash_time + self.config.sign_time)
        else:
            service = 0.0
        if self.config.batch_read_replies and self.simulator.obs is None:
            # Amortised path: park the answered read; the first one in a
            # tick schedules a same-tick flush that batch-signs every
            # pledge and sends all replies together (which the
            # connection pool then coalesces per peer).  Skipped under
            # observability so each reply keeps its own causal trace.
            self._pending_reads.append(
                (client_id, pledged_wire, message.request_id,
                 served_result, self.latest_stamp))
            if len(self._pending_reads) == 1:
                self.work.submit(service, self._flush_reads)
            return
        pledge = Pledge.make(
            self.keys,
            query_wire=pledged_wire,
            result_hash=sha1_hex(served_result),
            stamp=self.latest_stamp,
            request_id=message.request_id,
        )
        reply = ReadReply(request_id=message.request_id,
                          result=served_result,
                          pledge=self._maybe_garble(pledge))
        self.work.submit(service, self.send, client_id, reply, 2048)

    def _maybe_garble(self, pledge: Pledge) -> Pledge:
        garble = getattr(self.strategy, "garble_signature", None)
        if garble is not None and garble():
            # A malicious slave withholding its real signature: clients
            # will reject the reply, but there is nothing to incriminate.
            self.metrics.incr("slave_garbled_signatures")
            return dataclasses.replace(pledge, signature=b"\x00garbage")
        return pledge

    def _flush_reads(self) -> None:
        """Pledge and reply to every read buffered this tick as one batch.

        Pledge payloads and signatures are byte-identical to the
        unbatched path (:meth:`Pledge.make_many` only amortises signer
        setup); each reply is still its own protocol message, so
        per-message adversary and chaos behaviour is unchanged.
        """
        pending, self._pending_reads = self._pending_reads, []
        if not pending:
            return
        pledges = Pledge.make_many(
            self.keys,
            [(pledged_wire, sha1_hex(served_result), stamp, request_id)
             for _client, pledged_wire, request_id, served_result, stamp
             in pending])
        if len(pending) > 1:
            self.metrics.incr("slave_read_batches")
        for (client_id, _wire, request_id, served_result, _stamp), pledge \
                in zip(pending, pledges):
            self.send(client_id,
                      ReadReply(request_id=request_id, result=served_result,
                                pledge=self._maybe_garble(pledge)),
                      2048)

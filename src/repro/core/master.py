"""Master servers: the trusted core of the system.

A master (Section 2) is a trusted host holding a full copy of the content.
Masters jointly:

* order and execute every write through the totally-ordered broadcast,
  spacing commits at least ``max_latency`` apart (Section 3.1);
* lazily update their slave sets after commit, and keep slaves fresh with
  signed keep-alive stamps (Section 3.1);
* serve client double-check requests, throttling statistically greedy
  clients (Section 3.3);
* verify accusations (from clients or the auditor) against historical
  snapshots, and exclude proven-malicious slaves, reassigning their
  clients (Section 3.5);
* periodically broadcast their slave lists so that when a master crashes
  the survivors divide its slave set (Section 3.1).
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Any

from repro.content.queries import ReadQuery, operation_from_wire
from repro.core.messages import (
    Accusation,
    BcastElectAuditor,
    BcastExcludeSlave,
    BcastSlaveList,
    BcastWrite,
    ClientHello,
    DoubleCheckReply,
    DoubleCheckRequest,
    ExclusionNotice,
    KeepAlive,
    Pledge,
    ResyncRequest,
    SetupFailed,
    SlaveAssignment,
    SlaveSnapshot,
    SlaveUpdate,
    WriteReply,
    WriteRequest,
)
from repro.core.trusted import CertAnnouncement, TrustedServer
from repro.crypto.certificates import Certificate
from repro.crypto.hashing import constant_time_equals, sha1_hex
from repro.crypto.signatures import PublicKey
from repro.qos.tokens import TokenBucket
from repro.sim.simulator import EventHandle


@functools.lru_cache(maxsize=65536)
def _client_digest(client_id: str) -> int:
    """Stable 32-bit digest of a client id (auditor-partition hashing).

    Memoised because the master recomputes it on every assignment and on
    every auditor-failover sweep; client-id strings are interned-ish and
    few, so the cache stays tiny.
    """
    return int(sha1_hex(client_id)[:8], 16)


class MasterServer(TrustedServer):
    """One trusted master server."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # -- slave set ----------------------------------------------------
        self.slaves: list[str] = []
        self.slave_certs: dict[str, Certificate] = {}
        self.excluded_slaves: set[str] = set()
        # -- clients --------------------------------------------------------
        #: client -> slave ids currently assigned to it (quorum-sized).
        self.client_assignments: dict[str, tuple[str, ...]] = {}
        #: Per-client double-check allowance (Section 3.3 greedy-client
        #: throttling; the bucket itself now lives in ``repro.qos``).
        self._buckets: dict[str, TokenBucket] = {}
        #: Auditors the broadcast layer suspects crashed (failover set).
        self._dead_auditors: set[str] = set()
        # -- writes -----------------------------------------------------------
        self._write_queue: deque[WriteRequest] = deque()
        self._write_inflight = False
        self._next_commit_floor = 0.0
        self._keepalive_handle: EventHandle | None = None
        #: (client_id, request_id) -> "queued" | "committed"; gives writes
        #: at-most-once semantics across client retries and re-setups
        #: (a retry may arrive at a different master, so commit-state is
        #: tracked on delivery, which every master sees identically).
        self._write_states: dict[tuple[str, str], str] = {}
        #: Generation counter for periodic loops: timer chains die while
        #: the node is crashed, so recovery restarts them and stale chains
        #: self-terminate.
        self._loop_epoch = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        super().start()
        self._keepalive_loop(self._loop_epoch)
        self._slave_list_loop(self._loop_epoch)

    def on_recover(self) -> None:
        super().on_recover()
        self._loop_epoch += 1
        self._keepalive_loop(self._loop_epoch)
        self._slave_list_loop(self._loop_epoch)
        self._pump_writes()

    def register_slave(self, slave_id: str, address: str,
                       public_key: PublicKey) -> Certificate:
        """Owner-time registration: certify and adopt a slave."""
        cert = Certificate.issue(self.keys, slave_id, address, public_key,
                                 issued_at=self.now)
        self.slaves.append(slave_id)
        self.slave_certs[slave_id] = cert
        self.master_of[slave_id] = self.node_id
        return cert

    def elect_auditors(self, auditor_ids: tuple[str, ...]) -> None:
        """Propose the auditor set via the broadcast (rank-0 master)."""
        self.broadcast.broadcast(BcastElectAuditor(
            auditor_ids=tuple(auditor_ids)))

    # -- protocol message handling ----------------------------------------------

    def handle_protocol_message(self, src_id: str, message: Any) -> None:
        if isinstance(message, ClientHello):
            self._handle_hello(src_id, message)
        elif isinstance(message, WriteRequest):
            self._handle_write_request(src_id, message)
        elif isinstance(message, DoubleCheckRequest):
            self._handle_double_check(src_id, message)
        elif isinstance(message, Accusation):
            self._handle_accusation(src_id, message)
        elif isinstance(message, ResyncRequest):
            self._handle_resync(src_id, message)
        else:
            raise TypeError(
                f"master {self.node_id} got unexpected "
                f"{type(message).__name__} from {src_id}"
            )

    # -- setup phase (Section 2) ------------------------------------------------

    def _handle_hello(self, client_id: str, message: ClientHello) -> None:
        if not self.auditor_ids:
            # The auditor election has not been delivered yet; a client
            # assigned now would not know where to forward pledges.
            self.after(0.5, self._handle_hello, client_id, message)
            return
        assignment = self._make_assignment(client_id)
        if assignment is None:
            self.send(client_id, SetupFailed(reason="no slaves available"))
            return
        self.send(client_id, assignment)

    def _make_assignment(self, client_id: str) -> SlaveAssignment | None:
        """Pick ``read_quorum`` distinct slaves for a client.

        Selection is a uniform random sample of the master's usable
        slaves (the paper's "the one closest to the client for example"
        is only an example policy; random selection spreads load and, for
        the quorum variant, makes collusion statistics match the
        hypergeometric model of experiment E9).
        """
        usable = [s for s in self.slaves if s not in self.excluded_slaves]
        quorum = self.config.read_quorum
        certs: list[Certificate] = []
        picked: list[str] = []
        if len(usable) >= quorum:
            picked = self.rng.sample(usable, quorum)
            certs = [self.slave_certs[s] for s in picked]
        else:
            # Not enough local slaves: borrow from other masters' announced
            # lists (still certified; clients verify any master's signature).
            pool: list[Certificate] = [self.slave_certs[s] for s in usable]
            for certs_tuple in self.announced_lists.values():
                pool.extend(c for c in certs_tuple
                            if c.subject_id not in self.excluded_slaves)
            seen: set[str] = set()
            for cert in pool:
                if cert.subject_id not in seen:
                    seen.add(cert.subject_id)
                    picked.append(cert.subject_id)
                    certs.append(cert)
                if len(picked) == quorum:
                    break
            if len(picked) < quorum:
                return None
        self.client_assignments[client_id] = tuple(picked)
        return SlaveAssignment(slave_certificates=tuple(certs),
                               auditor_id=self._auditor_for(client_id))

    def _auditor_for_static(self, client_id: str) -> str:
        """The hash-preferred auditor, ignoring liveness."""
        if not self.auditor_ids:
            return ""
        return self.auditor_ids[_client_digest(client_id)
                                % len(self.auditor_ids)]

    def _auditor_for(self, client_id: str) -> str:
        """Pick the client's auditor: stable hash over the auditor set.

        With several auditors (Section 3.4's "add extra auditors") the
        pledge stream partitions by client, so each pledge is audited
        exactly once and a client's pledges always meet the same auditor.
        Auditors believed crashed are skipped (failover to the next
        survivor in hash order).
        """
        if not self.auditor_ids:
            return ""
        alive = [a for a in self.auditor_ids
                 if a not in self._dead_auditors]
        if not alive:
            return self._auditor_for_static(client_id)
        return alive[_client_digest(client_id) % len(alive)]

    # -- write protocol (Section 3.1) ------------------------------------------------

    def _handle_write_request(self, client_id: str,
                              message: WriteRequest) -> None:
        allowed = (self.config.writers_allowed is None
                   or client_id in self.config.writers_allowed)
        obs = self.simulator.obs
        if obs is not None and obs.current is not None:
            obs.event(self.node_id, "master.acl_check",
                      request_id=message.request_id, allowed=allowed)
        if not allowed:
            self.metrics.incr("writes_denied")
            self.send(client_id, WriteReply(
                request_id=message.request_id, committed=False,
                version=self.version, reason="access denied"))
            return
        state = self._write_states.get((client_id, message.request_id))
        if state == "committed":
            # Client retry after a lost reply: confirm, do not re-apply.
            self.metrics.incr("writes_duplicate_confirmed")
            self.send(client_id, WriteReply(
                request_id=message.request_id, committed=True,
                version=self.version))
            return
        if state == "queued":
            self.metrics.incr("writes_duplicate_ignored")
            return
        self._write_states[(client_id, message.request_id)] = "queued"
        self._write_queue.append(message)
        self._pump_writes()

    def _pump_writes(self) -> None:
        """Submit the next queued write, respecting ``max_latency`` spacing.

        "Two write operations cannot be, time-wise, closer than
        max_latency to each other" -- we hold back submission until the
        previous commit is at least ``max_latency`` old, and the commit
        path enforces the same floor against concurrent submissions from
        other masters.
        """
        if self._write_inflight or not self._write_queue:
            return
        last_commit = self.commit_times.get(self.version, 0.0)
        earliest = last_commit + self.config.max_latency
        if self.version == 0 and not self.ops_log:
            earliest = self.now  # nothing committed yet
        if self.now < earliest:
            self.after(earliest - self.now, self._pump_writes)
            return
        request = self._write_queue.popleft()
        self._write_inflight = True
        self.broadcast.broadcast(BcastWrite(
            origin_master=self.node_id,
            client_id=request.client_id,
            request_id=request.request_id,
            op_wire=request.op_wire,
        ))

    def deliver_write(self, seq: int, origin: str, payload: BcastWrite) -> None:
        """Totally-ordered write delivery: schedule the spaced commit.

        Duplicate deliveries (a client resubmitting through a different
        master after a timeout) are detected here: every master sees the
        same delivery order, so all of them skip the same duplicates.
        """
        key = (payload.client_id, payload.request_id)
        if self._write_states.get(key) == "committed":
            if payload.origin_master == self.node_id:
                self._write_inflight = False
                self.send(payload.client_id, WriteReply(
                    request_id=payload.request_id, committed=True,
                    version=self.version))
                self._pump_writes()
            return
        self._write_states[key] = "committed"
        if self.broadcast.is_caught_up():
            commit_at = max(self.now, self._next_commit_floor)
        else:
            # Catch-up replay after a crash: the master set already spaced
            # these commits >= max_latency apart in global time when they
            # were first committed; a straggler replays them immediately,
            # otherwise it would stay (and serve trusted answers) minutes
            # behind the group.
            commit_at = self.now
        self._next_commit_floor = commit_at + self.config.max_latency
        self.after(commit_at - self.now, self._commit_write, payload)

    def _commit_write(self, payload: BcastWrite) -> None:
        obs = self.simulator.obs
        if obs is None:
            self._do_commit(payload)
            return
        # Always recorded (sampled or not): the Section 3.4 audit-lag
        # check pairs every commit with the auditor's advance.
        with obs.span(self.node_id, "master.commit",
                      request_id=payload.request_id) as span:
            self._do_commit(payload)
            span.attrs["version"] = self.version

    def _do_commit(self, payload: BcastWrite) -> None:
        self.commit_op(payload.op_wire)
        self.metrics.incr(f"commits@{self.node_id}")
        stamp = self.current_stamp()
        update = SlaveUpdate(from_version=self.version - 1,
                             ops_wire=(payload.op_wire,), stamp=stamp)
        for slave in self.slaves:
            if slave not in self.excluded_slaves:
                self.send(slave, update, size_bytes=1024)
        if payload.origin_master == self.node_id:
            self._write_inflight = False
            self.send(payload.client_id, WriteReply(
                request_id=payload.request_id, committed=True,
                version=self.version))
            self._pump_writes()

    def _keepalive_loop(self, epoch: int = 0) -> None:
        """Periodic signed stamps so slaves stay fresh between writes."""
        if self.crashed or epoch != self._loop_epoch:
            return
        if not self.broadcast.is_caught_up():
            # A stale master must not certify freshness: a keep-alive
            # signed at an old version would let a slave serve outdated
            # state inside the max_latency window.  Stay silent until the
            # broadcast repair finishes; slaves simply see us as late.
            self._keepalive_handle = self.after(
                self.config.keepalive_interval, self._keepalive_loop,
                epoch)
            return
        stamp = self.current_stamp()
        self.metrics.incr(f"keepalives@{self.node_id}")
        for slave in self.slaves:
            if slave not in self.excluded_slaves:
                self.send(slave, KeepAlive(stamp=stamp))
        for auditor in self.auditor_ids:
            # Auditors time their version advancement off keep-alives too.
            self.send(auditor, KeepAlive(stamp=stamp))
        self._keepalive_handle = self.after(self.config.keepalive_interval,
                                            self._keepalive_loop, epoch)

    def _handle_resync(self, slave_id: str, message: ResyncRequest) -> None:
        """Bring a lagging slave back in sync.

        Incremental when the op log still covers the slave's version; a
        full state snapshot otherwise (the slave was down longer than
        ``ops_log_depth`` writes).
        """
        if not self.broadcast.is_caught_up():
            # Resyncing a slave onto stale state (with a stale-but-fresh
            # stamp) would reintroduce the recovered-master hazard.
            self.after(0.25, self._handle_resync, slave_id, message)
            return
        have = message.have_version
        if have >= self.version:
            return
        if any(v not in self.ops_log for v in range(have, self.version)):
            self.metrics.incr("slave_snapshots_sent")
            self.send(slave_id, SlaveSnapshot(
                store=self.store.clone(), stamp=self.current_stamp()),
                size_bytes=64 * 1024)
            return
        missing = [self.ops_log[v] for v in range(have, self.version)]
        self.send(slave_id, SlaveUpdate(
            from_version=have, ops_wire=tuple(missing),
            stamp=self.current_stamp()), size_bytes=1024 * len(missing))

    # -- double-checks (Section 3.3) ---------------------------------------------------

    def _handle_double_check(self, client_id: str,
                             message: DoubleCheckRequest) -> None:
        if not self.broadcast.is_caught_up():
            # Serving a trusted answer from stale state would defeat the
            # point of double-checking; defer until repaired.
            self.after(0.25, self._handle_double_check, client_id, message)
            return
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.config.greedy_allowance_rate,
                                 self.config.greedy_burst, self.now)
            self._buckets[client_id] = bucket
        if not bucket.try_consume(self.now):
            self.metrics.incr("double_checks_over_quota")
            if self.rng.random() < self.config.greedy_drop_fraction:
                self.metrics.incr("double_checks_dropped_greedy")
                return  # "simply ignoring" the greedy client's request
        self.metrics.incr("double_checks_served")
        obs = self.simulator.obs
        if obs is None:
            self._serve_double_check(client_id, message)
        else:
            with obs.child_span(self.node_id, "master.double_check",
                                request_id=message.request_id):
                self._serve_double_check(client_id, message)

    def _serve_double_check(self, client_id: str,
                            message: DoubleCheckRequest) -> None:
        query = operation_from_wire(message.query_wire)
        if not isinstance(query, ReadQuery):
            raise TypeError("double-check payload must be a read query")
        outcome = self.store.execute_read(query)
        if self.config.simulate_service_times:
            service = (self.execution_time(outcome.cost_units)
                       + self.config.hash_time)
        else:
            service = 0.0
        reply = DoubleCheckReply(
            request_id=message.request_id,
            result_hash=sha1_hex(outcome.result),
            version=self.version,
            result=outcome.result if message.want_result else None,
            include_result=message.want_result,
        )
        self.work.submit(service, self.send, client_id, reply)

    # -- corrective action (Section 3.5) -------------------------------------------------

    def _handle_accusation(self, src_id: str, message: Accusation) -> None:
        """Verify evidence; if the pledge is provably wrong, exclude."""
        pledge = message.pledge
        verdict = self.evaluate_pledge(pledge)
        self.metrics.incr(f"accusations_{verdict}")
        obs = self.simulator.obs
        if obs is not None:
            obs.event(self.node_id, "master.accusation",
                      slave=pledge.slave_id, verdict=verdict,
                      discovery=message.discovery)
        if verdict != "guilty":
            return
        owner = self.master_of.get(pledge.slave_id, self.node_id)
        self.broadcast.broadcast(BcastExcludeSlave(
            slave_id=pledge.slave_id,
            owning_master=owner,
            evidence_request_id=pledge.request_id,
            discovery=message.discovery,
        ))

    def evaluate_pledge(self, pledge: Pledge) -> str:
        """Classify a pledge: 'guilty', 'innocent' or 'unverifiable'.

        Guilty requires (a) a valid slave signature -- otherwise a client
        could frame an innocent slave (Section 3.3) -- and (b) a result
        hash that differs from the trusted re-execution at the pledged
        version.
        """
        cert = self._cert_for(pledge.slave_id)
        if cert is None:
            return "unverifiable"
        if not pledge.verify(self.keys, cert.subject_public_key):
            return "forged"  # cannot frame without the slave's key
        snapshot = self.store_at(pledge.stamp.version)
        if snapshot is None:
            return "unverifiable"
        query = operation_from_wire(pledge.query_wire)
        if not isinstance(query, ReadQuery):
            return "unverifiable"
        outcome = snapshot.execute_read(query)
        if constant_time_equals(sha1_hex(outcome.result),
                                pledge.result_hash):
            return "innocent"
        return "guilty"

    def _cert_for(self, slave_id: str) -> Certificate | None:
        cert = self.slave_certs.get(slave_id)
        if cert is not None:
            return cert
        return self.find_slave_cert(slave_id)

    def deliver_exclusion(self, payload: BcastExcludeSlave) -> None:
        if payload.slave_id in self.excluded_slaves:
            return
        self.excluded_slaves.add(payload.slave_id)
        obs = self.simulator.obs
        if obs is not None:
            obs.event(self.node_id, "master.exclusion",
                      slave=payload.slave_id,
                      discovery=payload.discovery)
        if payload.owning_master == self.node_id or (
                payload.owning_master not in self.broadcast.alive_view
                and self.broadcast.alive_view
                and self.broadcast.alive_view[0] == self.node_id):
            # Count each exclusion once systemwide: at the owning master
            # (or the lead survivor when the owner is gone).
            self.metrics.incr("exclusions")
            self.metrics.incr(f"exclusions_{payload.discovery}")
        if payload.slave_id in self.slaves:
            self.slaves.remove(payload.slave_id)
            # Contact every client of ours assigned to the excluded slave
            # and move it to a replacement (Section 3.5).
            for client_id, assigned in list(self.client_assignments.items()):
                if payload.slave_id not in assigned:
                    continue
                replacement = self._make_assignment(client_id)
                if replacement is None:
                    self.send(client_id, SetupFailed(
                        reason="no replacement slaves"))
                    continue
                self.send(client_id, ExclusionNotice(
                    excluded_slave_id=payload.slave_id,
                    replacement=replacement))
                self.metrics.incr("clients_reassigned")

    def on_trusted_member_recovered(self, member_id: str) -> None:
        """A recovered auditor rejoins the failover rotation."""
        if member_id in self._dead_auditors:
            self._dead_auditors.discard(member_id)
            self.metrics.incr("auditor_recovery_noticed")

    # -- slave-list gossip and crash takeover (Section 3.1) --------------------

    def _slave_list_loop(self, epoch: int = 0) -> None:
        if self.crashed or epoch != self._loop_epoch:
            return
        certs = tuple(self.slave_certs[s] for s in self.slaves
                      if s not in self.excluded_slaves)
        self.broadcast.broadcast(BcastSlaveList(
            master_id=self.node_id,
            slave_ids=tuple(c.subject_id for c in certs)))
        # Certificates ride outside the envelope: deliver_slave_list only
        # records ids; certs are synced point-to-point to keep broadcast
        # payloads canonical.  Simpler: attach via announced map directly.
        self._announce_certs(certs)
        self.after(self.config.slave_list_broadcast_interval,
                   self._slave_list_loop, epoch)

    def _announce_certs(self, certs: tuple[Certificate, ...]) -> None:
        """Point-to-point cert dissemination accompanying the broadcast."""
        for member in self.broadcast.ranked_members:
            if member != self.node_id:
                self.send(member, CertAnnouncement(
                    master_id=self.node_id, certs=certs), size_bytes=2048)

    def on_trusted_member_crashed(self, member_id: str) -> None:
        """Divide a crashed master's slave set among the survivors.

        Section 3.1: "in the event of a master crash, the remaining ones
        will divide its slave set."  The division is deterministic
        (rank-ordered round-robin over the crashed master's last announced
        list), so every survivor adopts a disjoint share without extra
        coordination.
        """
        if member_id in self.auditor_ids:
            # Auditor failover: clients whose pledge stream targeted the
            # crashed auditor are re-pointed at a surviving one so their
            # reads stay auditable.  (Pledges in flight to the dead node
            # are lost -- the paper's statistical guarantee is unaffected
            # because those reads were already accepted; coverage resumes
            # with the next read.)
            self.metrics.incr("auditor_crash_noticed")
            self._dead_auditors.add(member_id)
            for client_id in list(self.client_assignments):
                if self._auditor_for_static(client_id) == member_id:
                    replacement = self._make_assignment(client_id)
                    if replacement is not None:
                        self.send(client_id, ExclusionNotice(
                            excluded_slave_id="", replacement=replacement))
                        self.metrics.incr("clients_auditor_failover")
            return
        self.metrics.incr("master_crash_noticed")
        # Timestamped so harnesses can measure detection latency (the gap
        # between injecting a crash and the survivors acting on it).
        self.metrics.record("master_crash_detections", self.now, 1.0)
        obs = self.simulator.obs
        if obs is not None:
            obs.event(self.node_id, "master.takeover",
                      crashed=member_id)
        orphan_certs = self.announced_lists.pop(member_id, ())
        survivors = sorted(m for m in self.broadcast.alive_view
                           if m not in self.auditor_ids)
        if not survivors or self.node_id not in survivors:
            return
        my_rank = survivors.index(self.node_id)
        for index, cert in enumerate(orphan_certs):
            if index % len(survivors) != my_rank:
                continue
            slave_id = cert.subject_id
            if slave_id in self.excluded_slaves or slave_id in self.slaves:
                continue
            self.slaves.append(slave_id)
            self.slave_certs[slave_id] = cert
            self.master_of[slave_id] = self.node_id
            self.metrics.incr("slaves_adopted")
            # The adopted slave hears our next keep-alive, notices the
            # version gap (if any) and resyncs from us.
            self.send(slave_id, KeepAlive(stamp=self.current_stamp()))

"""The content owner: holds the content key, certifies master servers.

Section 2: "this is one individual or organization which administers the
content, and is in charge of setting an access control policy for it ...
The content private key is known only by the content owner, while the
content public key needs to be known by every client."

The owner is not a network node during normal operation -- it acts at
deployment time: generating the content key, certifying each master's
public key, and publishing those certificates in the directory.
"""

from __future__ import annotations

import random

from repro.core.directory import DirectoryServer
from repro.crypto.certificates import Certificate
from repro.crypto.hashing import sha1_hex
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import PublicKey, new_signer
from repro.shard.map import ShardMap


class ContentOwner:
    """Offline principal owning the content key."""

    def __init__(self, owner_id: str, signer_scheme: str = "hmac",
                 rsa_bits: int = 512,
                 rng: random.Random | None = None) -> None:
        self.owner_id = owner_id
        self.keys = KeyPair(owner_id, new_signer(
            signer_scheme, rng=rng, rsa_bits=rsa_bits))
        self.issued: list[Certificate] = []

    @property
    def content_public_key(self) -> PublicKey:
        """The content public key -- part of the content identifier, so
        clients know it a priori (the self-certifying-name trick of [5])."""
        return self.keys.public_key

    def content_key_fingerprint(self) -> str:
        fingerprint = getattr(self.content_public_key, "fingerprint", None)
        if callable(fingerprint):
            return fingerprint()
        return sha1_hex(repr(self.content_public_key))

    def certify_master(self, master_id: str, address: str,
                       master_public_key: PublicKey, now: float = 0.0) -> Certificate:
        """Issue a certificate binding a master's address to its key."""
        cert = Certificate.issue(self.keys, master_id, address,
                                 master_public_key, issued_at=now)
        self.issued.append(cert)
        return cert

    def sign_shard_map(self, epoch: int, seed: int,
                       assignments: dict[str, tuple[str, ...]],
                       now: float = 0.0) -> ShardMap:
        """Sign a shard map for this owner's namespace.

        Only the owner can do this -- the directory serves the result
        but cannot forge it, exactly like master certificates.
        """
        return ShardMap.make(self.keys, self.content_key_fingerprint(),
                             epoch, seed, assignments, issued_at=now)

    def publish_all(self, directory: DirectoryServer) -> None:
        """Push every issued certificate into the public directory."""
        fingerprint = self.content_key_fingerprint()
        for cert in self.issued:
            directory.publish(fingerprint, cert)

"""Section 4 variants as reusable policies.

The two variants the paper sketches are implemented in the protocol
itself -- security levels in :meth:`repro.core.client.Client.submit_read`
and quorum reads via :attr:`repro.core.config.ProtocolConfig.read_quorum`.
This module provides the policy layer applications use to drive them:

* :class:`SecurityLevelPolicy` -- classify queries into levels (the
  "further refinement" that "assigns even more security levels for read
  operations and sets the double-check probability based on the read's
  security level");
* :func:`quorum_config` / :func:`sensitive_reads_config` -- config
  constructors for the two variant deployments, used by the E9 benchmark
  and the examples.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.content.queries import ReadQuery
from repro.core.config import ProtocolConfig


class SecurityLevelPolicy:
    """Maps each read query to a named security level.

    Rules are ``(predicate, level)`` pairs checked in order; the first
    match wins, and ``default_level`` applies when none match.  Levels
    must exist in the config's ``security_levels`` table.
    """

    def __init__(self, config: ProtocolConfig,
                 default_level: str = "normal") -> None:
        if default_level not in config.security_levels:
            raise ValueError(
                f"default level {default_level!r} not in config levels "
                f"{sorted(config.security_levels)}"
            )
        self.config = config
        self.default_level = default_level
        self._rules: list[tuple[Callable[[ReadQuery], bool], str]] = []

    def add_rule(self, predicate: Callable[[ReadQuery], bool],
                 level: str) -> "SecurityLevelPolicy":
        if level not in self.config.security_levels:
            raise ValueError(
                f"level {level!r} not in config levels "
                f"{sorted(self.config.security_levels)}"
            )
        self._rules.append((predicate, level))
        return self

    def level_for(self, query: ReadQuery) -> str:
        for predicate, level in self._rules:
            if predicate(query):
                return level
        return self.default_level

    def probability_for(self, query: ReadQuery) -> float:
        return self.config.security_levels[self.level_for(query)]


def quorum_config(base: ProtocolConfig, quorum: int) -> ProtocolConfig:
    """A copy of ``base`` running the multi-slave quorum-read variant.

    "Another possibility is to send the same read request to more than one
    untrusted server ... a number of malicious slaves would have to
    collude in order to pass an incorrect answer."
    """
    if quorum < 1:
        raise ValueError(f"quorum must be >= 1, got {quorum}")
    return dataclasses.replace(base, read_quorum=quorum)


def sensitive_reads_config(base: ProtocolConfig,
                           levels: dict[str, float]) -> ProtocolConfig:
    """A copy of ``base`` with a custom security-level table.

    Any level with probability 1.0 is executed only on trusted masters,
    "which guarantees that clients always get correct results".
    """
    merged = dict(base.security_levels)
    merged.update(levels)
    return dataclasses.replace(base, security_levels=merged)

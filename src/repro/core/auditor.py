"""The auditor: background re-execution of every pledged read.

Section 3.4.  The auditor is a trusted server elected through the master
broadcast; it has no slave set and serves no clients.  Clients forward
every accepted-but-not-double-checked pledge to it; the auditor re-executes
the pledged query against its own replica *at the pledged version* and
compares secure hashes.  A mismatch is delayed discovery: the auditor
sends the incriminating pledge to the slave's master, which excludes the
slave (Section 3.5).

The throughput advantages the paper enumerates are all modelled:

* **no signatures** -- auditing charges execution + hash time only, never
  ``sign_time`` (slaves pay ``sign_time`` per read);
* **no client replies** -- no response messages are sent;
* **query caching** -- re-executions are memoised per
  ``(version, request-hash)``, so popular queries cost one execution and
  then only a hash compare;
* **deliberate lag** -- the auditor executes a write only after
  ``max_latency + audit_grace`` has passed since the masters committed
  it, guaranteeing no client will still accept reads for the version it
  is finishing; peak-hour backlogs drain off-peak (experiment E5).

``audit_fraction < 1`` implements the paper's overload valve: "weaken the
security guarantees by verifying only a randomly chosen fraction of all
reads."
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.content.queries import ReadQuery, operation_from_wire
from repro.core.messages import (
    Accusation,
    AuditSubmission,
    BcastWrite,
    KeepAlive,
    Pledge,
    TimestampedPledge,
)
from repro.core.trusted import TrustedServer
from repro.crypto.certificates import Certificate
from repro.crypto.hashing import constant_time_equals, sha1_hex


class AuditorServer(TrustedServer):
    """The elected auditor."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Pledges whose version the auditor has not reached yet.
        self._parked: dict[int, deque[TimestampedPledge]] = {}
        #: (version, request_hash) -> trusted result hash.
        self._cache: dict[tuple[int, str], str] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.pledges_received = 0
        self.pledges_audited = 0
        self.pledges_skipped = 0
        self.detections = 0
        self._next_commit_floor = 0.0
        self._backlog_probe_interval = 1.0
        #: Committed writes awaiting their audit-window expiry, in
        #: delivery order: (apply_at, payload).  A queue rather than
        #: per-write timers so that timers lost to a crash window are
        #: recovered by restarting the drain loop.
        self._apply_queue: deque[tuple[float, BcastWrite]] = deque()
        self._loop_epoch = 0

    def start(self) -> None:
        super().start()
        self._probe_backlog(self._loop_epoch)
        self._advance_loop(self._loop_epoch)

    def on_recover(self) -> None:
        super().on_recover()
        # Timer chains died while crashed; restart them (stale loop
        # instances self-terminate via the epoch counter).
        self._loop_epoch += 1
        self._advance_loop(self._loop_epoch)
        self._probe_backlog(self._loop_epoch)

    # -- write lag (Section 3.4) ------------------------------------------

    def deliver_write(self, seq: int, origin: str, payload: BcastWrite) -> None:
        """Queue the write; apply only after the audit window closes.

        The auditor mirrors the masters' commit-spacing computation to
        estimate when they commit, then waits an extra
        ``max_latency + audit_grace`` before moving to that version --
        "the auditor can move to a new content version only after a
        sufficiently large time interval (more than max_latency) has
        elapsed since the rest of the trusted servers have moved to that
        same content version."
        """
        masters_commit_at = max(self.now, self._next_commit_floor)
        self._next_commit_floor = masters_commit_at + self.config.max_latency
        apply_at = (masters_commit_at + self.config.max_latency
                    + self.config.audit_grace)
        self._apply_queue.append((apply_at, payload))

    def _advance_loop(self, epoch: int) -> None:
        """Apply queued writes whose audit window has closed."""
        if self.crashed or epoch != self._loop_epoch:
            return
        while self._apply_queue and self._apply_queue[0][0] <= self.now:
            _at, payload = self._apply_queue.popleft()
            self._advance_version(payload)
        self.after(min(0.5, self.config.keepalive_interval),
                   self._advance_loop, epoch)

    def _advance_version(self, payload: BcastWrite) -> None:
        self.commit_op(payload.op_wire)
        self.metrics.incr("auditor_version_advances")
        obs = self.simulator.obs
        if obs is not None:
            # Always recorded: paired with master.commit spans by the
            # Section 3.4 audit-lag check.
            obs.event(self.node_id, "auditor.advance",
                      version=self.version)
        # Pledges parked for the now-reachable version become auditable.
        ready = self._parked.pop(self.version, None)
        if ready:
            for entry in ready:
                self._schedule_audit(entry)

    # -- pledge intake ------------------------------------------------------------

    def handle_protocol_message(self, src_id: str, message: Any) -> None:
        if isinstance(message, AuditSubmission):
            self._handle_submission(message.pledge)
        elif isinstance(message, KeepAlive):
            pass  # freshness signal only; the broadcast already orders writes
        else:
            raise TypeError(
                f"auditor got unexpected {type(message).__name__} "
                f"from {src_id}"
            )

    def _handle_submission(self, pledge: Pledge) -> None:
        self.pledges_received += 1
        self.metrics.incr("pledges_forwarded")
        if (self.config.audit_fraction < 1.0
                and self.rng.random() >= self.config.audit_fraction):
            self.pledges_skipped += 1
            self.metrics.incr("pledges_skipped")
            return
        entry = TimestampedPledge(pledge=pledge, received_at=self.now)
        if pledge.stamp.version > self.version:
            self._parked.setdefault(pledge.stamp.version,
                                    deque()).append(entry)
            return
        self._schedule_audit(entry)

    # -- audit execution ---------------------------------------------------------

    def _schedule_audit(self, entry: TimestampedPledge,
                        attempts: int = 0) -> None:
        pledge = entry.pledge
        # 1. Signature checks: the slave's pledge signature and the master
        #    stamp inside it.  Both are verifications, not signatures.
        cert = self.find_slave_cert(pledge.slave_id)
        if cert is None:
            # Before the first slave-list gossip round we may not know the
            # slave yet; retry shortly rather than dropping evidence.
            if attempts < 30:
                self.after(1.0, self._schedule_audit, entry, attempts + 1)
            else:
                self.metrics.incr("audits_unknown_slave")
            return
        service = 2 * self.config.verify_time
        # With the cache disabled (experiment A3's baseline) the cache
        # must stay completely out of the picture: no lookups, no stores,
        # no hit/miss accounting -- every audit is a full re-execution.
        cache_enabled = self.config.auditor_cache_enabled
        cache_key = ((pledge.stamp.version, _request_key(pledge))
                     if cache_enabled else None)
        cached = self._cache.get(cache_key) if cache_enabled else None
        if cached is None:
            snapshot = self.store_at(pledge.stamp.version)
            if snapshot is None:
                self.metrics.incr("audits_unverifiable")
                return
            query = operation_from_wire(pledge.query_wire)
            if not isinstance(query, ReadQuery):
                self.metrics.incr("audits_unverifiable")
                return
            outcome = snapshot.execute_read(query)
            trusted_hash = sha1_hex(outcome.result)
            if cache_enabled:
                self._cache[cache_key] = trusted_hash
                self.cache_misses += 1
            service += (outcome.cost_units
                        * self.config.service_time_per_unit
                        + self.config.hash_time)
        else:
            trusted_hash = cached
            self.cache_hits += 1
            service += self.config.hash_time
        if not self.config.simulate_service_times:
            service = 0.0
        self.work.submit(service, self._finish_audit, entry, cert,
                         trusted_hash)

    def _finish_audit(self, entry: TimestampedPledge,
                      cert: Certificate, trusted_hash: str) -> None:
        pledge = entry.pledge
        entry.audited = True
        self.pledges_audited += 1
        self.metrics.incr("pledges_audited")
        self.metrics.observe("audit_delay",
                             self.now - entry.received_at)
        if not pledge.verify(self.keys, cert.subject_public_key):
            # Unsigned garbage cannot incriminate anyone (no framing).
            self.metrics.incr("audits_bad_signature")
            return
        detection = not sha1_hex_equal(trusted_hash, pledge.result_hash)
        obs = self.simulator.obs
        if obs is not None:
            # Always recorded: the Section 3.4/3.5 checks verify audits
            # run after the version advance and with non-negative lag.
            obs.event(self.node_id, "auditor.audit",
                      version=pledge.stamp.version,
                      detection=detection,
                      lag=self.now - pledge.stamp.timestamp)
        if not detection:
            self.metrics.incr("audits_clean")
            return
        # Delayed discovery (Section 3.5): ship the incriminating pledge
        # to the master in charge of the signing slave.
        self.detections += 1
        self.metrics.incr("audit_detections")
        self.metrics.observe(
            "audit_detection_latency",
            self.now - pledge.stamp.timestamp)
        owner = self.master_of.get(pledge.slave_id)
        if owner is None:
            owner = sorted(m for m in self.broadcast.ranked_members
                           if m != self.node_id)[0]
        self.send(owner, Accusation(pledge=pledge,
                                    accuser_id=self.node_id,
                                    discovery="audit"))

    # -- instrumentation ----------------------------------------------------------

    def _probe_backlog(self, epoch: int) -> None:
        if self.crashed or epoch != self._loop_epoch:
            return
        parked = sum(len(q) for q in self._parked.values())
        self.metrics.record("auditor_backlog_seconds", self.now,
                            self.work.backlog())
        self.metrics.record("auditor_parked_pledges", self.now, float(parked))
        self.after(self._backlog_probe_interval, self._probe_backlog, epoch)

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def _request_key(pledge: Pledge) -> str:
    return sha1_hex(pledge.query_wire)


def sha1_hex_equal(a: str, b: str) -> bool:
    """Constant-time comparison of two hex digests."""
    return constant_time_equals(a, b)

"""All protocol and deployment parameters in one place.

The paper repeatedly stresses that the system "is configurable, so it can
easily provide 100% correctness and/or 100% false response detection, at
the expense of operational performance" (Section 1).  The two dials that
statement refers to are :attr:`ProtocolConfig.double_check_probability`
(1.0 = every read checked against a master) and
:attr:`ProtocolConfig.audit_fraction` (1.0 = every pledge re-executed).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProtocolConfig:
    """Parameters of the replication protocol and its simulation costs.

    Timing parameters are in seconds of simulated time.
    """

    # -- consistency window (Section 3.1) --------------------------------
    #: Upper bound on the inconsistency window: once this much time has
    #: passed since a write committed, no client accepts a read that does
    #: not reflect it.  Also the minimum spacing between two writes.
    max_latency: float = 5.0
    #: How often masters push signed keep-alive version stamps to slaves.
    #: Must be comfortably below ``max_latency`` or slaves go stale
    #: between keep-alives and refuse reads.
    keepalive_interval: float = 1.0

    # -- statistical correctness (Sections 3.3-3.4) ------------------------
    #: Probability that a client double-checks a read with its master.
    double_check_probability: float = 0.05
    #: Fraction of forwarded pledges the auditor actually re-executes
    #: (1.0 = the paper's default full audit; lower = "weaken the security
    #: guarantees by verifying only a randomly chosen fraction").
    audit_fraction: float = 1.0
    #: Extra settling time beyond ``max_latency`` the auditor waits before
    #: advancing past a version (absorbs pledge forwarding delay).
    audit_grace: float = 2.0
    #: Whether the auditor caches re-execution results per
    #: (version, request) -- one of its stated throughput advantages.
    auditor_cache_enabled: bool = True

    # -- greedy-client throttling (Section 3.3) ----------------------------
    #: Sustained double-checks/second a master tolerates per client before
    #: suspecting greed.  Honest clients need roughly
    #: ``read_rate * double_check_probability``.
    greedy_allowance_rate: float = 1.0
    #: Burst allowance on top of the sustained rate (token bucket depth).
    greedy_burst: float = 20.0
    #: Fraction of over-quota double-checks the master ignores ("ignoring
    #: a large fraction of the double-check requests").
    greedy_drop_fraction: float = 0.9

    # -- wire-level admission control (repro.qos) ---------------------------
    #: Sustained protocol messages/s a listener admits per client
    #: connection before shedding (None = no wire-level frame limit).
    #: Only socket deployments consult these knobs; the simulator's
    #: fabric has no wire to police.
    qos_frame_rate: float | None = None
    #: Burst allowance on top of the sustained frame rate.
    qos_frame_burst: float = 200.0
    #: Sustained frame bytes/s admitted per client (None = unlimited).
    qos_byte_rate: float | None = None
    qos_byte_burst: float = 1024.0 * 1024.0
    #: Seeded fraction of over-quota frames actually shed (mirrors
    #: ``greedy_drop_fraction``; 1.0 = shed every over-quota frame).
    qos_shed_fraction: float = 1.0
    #: Frame tokens burned per rejected/oversized frame a client sends,
    #: so repeat offenders drain their own admission allowance.
    qos_strike_cost: float = 1.0
    #: Bounded inbox depth between frame decode and protocol dispatch
    #: (keep-alives and accusations are never shed from it).
    qos_inbox_limit: int = 1024
    #: Idle-connection reaper: abort a handshaked-but-silent inbound
    #: connection after this many keep-alive intervals (None = never).
    qos_idle_multiple: float | None = None
    #: Key admission buckets by client key fingerprint instead of
    #: connection (a deployment-shared :class:`repro.qos.ledger.
    #: AdmissionLedger`), so reconnect churn cannot mint fresh
    #: allowances.  Unregistered ids share one anonymous account.
    qos_per_principal: bool = False

    # -- namespace sharding (repro.shard) -----------------------------------
    #: Rendezvous salt baked into the signed shard map; fixed for the
    #: namespace lifetime so key placement only moves with the shard set.
    shard_map_seed: int = 0
    #: Client-side retry interval while the directory withholds the
    #: shard map (liveness-only failure mode).
    shard_map_retry: float = 1.0

    # -- client behaviour ---------------------------------------------------
    #: Client-side timeout for read/write/double-check responses.
    request_timeout: float = 10.0
    #: Read retries (stale or timed-out answers) before a client gives up
    #: and redoes the setup phase.
    max_read_retries: int = 5
    #: Per-client override of max_latency (Section 3.2 lets slow clients
    #: "settle with more modest expectations"); None = system value.
    client_max_latency: float | None = None

    # -- Section 4 variants ---------------------------------------------------
    #: Number of distinct slaves each read goes to (1 = base protocol;
    #: >1 = the quorum-read variant).
    read_quorum: int = 1
    #: Per-security-level double-check probability; level "sensitive"
    #: maps to 1.0, which the client implements as "execute on the
    #: trusted master only", exactly as Section 4 prescribes.
    security_levels: dict[str, float] = field(
        default_factory=lambda: {"normal": 0.05, "elevated": 0.25,
                                 "sensitive": 1.0})

    # -- access control (Section 2) -----------------------------------------
    #: Client ids allowed to write; None = all clients.  The paper's access
    #: control policy "is only concerned with operations that modify the
    #: content" (data secrecy is out of scope).
    writers_allowed: frozenset | None = None

    # -- crypto ---------------------------------------------------------------
    #: "rsa" for real signatures, "hmac" for fast large-scale simulation.
    signer_scheme: str = "hmac"
    rsa_bits: int = 512

    # -- simulated service times -------------------------------------------
    #: Seconds of simulated compute per content-store cost unit.
    service_time_per_unit: float = 1e-4
    #: Simulated cost of producing one digital signature (the slave-side
    #: overhead the auditor avoids; calibrated against experiment E10).
    sign_time: float = 5e-3
    #: Simulated cost of one signature verification.
    verify_time: float = 2e-4
    #: Simulated cost of one SHA-1 over a typical result.
    hash_time: float = 5e-5
    #: Charge the simulated compute costs above against the clock.  In
    #: the discrete-event simulator this models paper-calibrated server
    #: hardware; over real sockets the clock is wall time, so charging
    #: a simulated 5 ms signature on top of the *actual* crypto work
    #: caps a slave near 190 reads/s.  Socket deployments measuring
    #: real throughput set this to False (the work-queue discipline is
    #: kept; only the charged duration becomes zero).
    simulate_service_times: bool = True
    #: Buffer read replies arriving in the same scheduler tick and sign
    #: their pledges as one batch (amortised HMAC/RSA, single flush).
    #: Off by default: batching adds a tick of latency per read and the
    #: simulator's fidelity comes from per-read service accounting.
    batch_read_replies: bool = False

    # -- housekeeping ----------------------------------------------------------
    #: How many past store versions trusted servers retain for verifying
    #: accusations against historical pledges.
    version_history_depth: int = 64
    #: How many committed write operations masters keep for incremental
    #: slave resyncs; a slave further behind receives a full state
    #: snapshot instead.
    ops_log_depth: int = 1024
    #: How often masters broadcast their slave lists to the master set
    #: (Section 3.1; enables crash takeover).
    slave_list_broadcast_interval: float = 10.0
    #: Heartbeat/suspicion settings for the master broadcast protocol.
    broadcast_heartbeat_interval: float = 0.25
    broadcast_suspect_after: float = 1.5
    broadcast_request_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.max_latency <= 0:
            raise ValueError(f"max_latency must be positive, "
                             f"got {self.max_latency}")
        if not 0 < self.keepalive_interval <= self.max_latency:
            raise ValueError(
                f"keepalive_interval ({self.keepalive_interval}) must be in "
                f"(0, max_latency={self.max_latency}]"
            )
        if not 0.0 <= self.double_check_probability <= 1.0:
            raise ValueError(
                f"double_check_probability must be in [0, 1], "
                f"got {self.double_check_probability}"
            )
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise ValueError(
                f"audit_fraction must be in [0, 1], got {self.audit_fraction}"
            )
        for name in ("qos_frame_rate", "qos_byte_rate"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.qos_frame_burst <= 0 or self.qos_byte_burst <= 0:
            raise ValueError("qos bucket bursts must be positive")
        if not 0.0 <= self.qos_shed_fraction <= 1.0:
            raise ValueError(
                f"qos_shed_fraction must be in [0, 1], "
                f"got {self.qos_shed_fraction}")
        if self.qos_strike_cost < 0:
            raise ValueError(
                f"qos_strike_cost must be >= 0, got {self.qos_strike_cost}")
        if self.qos_inbox_limit < 1:
            raise ValueError(
                f"qos_inbox_limit must be >= 1, got {self.qos_inbox_limit}")
        if self.qos_idle_multiple is not None and self.qos_idle_multiple <= 0:
            raise ValueError(
                f"qos_idle_multiple must be positive, "
                f"got {self.qos_idle_multiple}")
        if self.shard_map_retry <= 0:
            raise ValueError(
                f"shard_map_retry must be positive, "
                f"got {self.shard_map_retry}")
        if self.read_quorum < 1:
            raise ValueError(f"read_quorum must be >= 1, "
                             f"got {self.read_quorum}")
        if self.version_history_depth < 1:
            raise ValueError("version_history_depth must be >= 1")
        if self.ops_log_depth < 1:
            raise ValueError("ops_log_depth must be >= 1")
        for level, probability in self.security_levels.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"security level {level!r} has probability "
                    f"{probability} outside [0, 1]"
                )

    def effective_client_max_latency(self) -> float:
        """The freshness bound this client population enforces."""
        if self.client_max_latency is not None:
            return self.client_max_latency
        return self.max_latency

"""Shared machinery of trusted servers (masters and the auditor).

Everything in Section 3 that is common to the whole trusted set lives
here:

* membership in the totally-ordered broadcast and the dispatch of
  delivered payloads (writes, auditor election, slave lists, exclusions);
* the signed ``content_version`` state and bounded version history used
  to verify accusations against past versions;
* the single-server work queue that turns content-store cost units and
  crypto operations into simulated service time (so saturation and lag
  are observable, which experiments E4/E5 need).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.broadcast.totalorder import BroadcastEnvelope, TotalOrderBroadcast
from repro.content.queries import operation_from_wire
from repro.content.store import ContentStore
from repro.core.config import ProtocolConfig
from repro.core.messages import (
    BcastElectAuditor,
    BcastExcludeSlave,
    BcastSlaveList,
    BcastWrite,
    BroadcastWrapper,
    VersionStamp,
)
from repro.crypto.certificates import Certificate
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import new_signer
from repro.metrics import MetricsRegistry
from repro.sim.network import Network, Node
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class CertAnnouncement:
    """Master -> trusted set: certificates backing a slave-list broadcast.

    Certificates travel point-to-point (not in the broadcast payload) so
    broadcast payloads stay small; the ordered :class:`BcastSlaveList`
    remains the authoritative ownership record.
    """

    master_id: str
    certs: tuple


class WorkQueue:
    """FIFO single-server queue converting work into simulated latency.

    ``submit`` schedules ``callback`` after the server has finished all
    previously queued work plus ``service_time``.  ``backlog`` exposes how
    far behind the server currently is, which is the auditor-lag metric.
    """

    def __init__(self, node: Node) -> None:
        self._node = node
        self._busy_until = 0.0
        self.total_busy = 0.0

    def submit(self, service_time: float, callback: Callable[..., None],
               *args: Any) -> None:
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        now = self._node.now
        start = max(now, self._busy_until)
        self._busy_until = start + service_time
        self.total_busy += service_time
        self._node.after(self._busy_until - now, callback, *args)

    def backlog(self) -> float:
        """Seconds of queued work not yet completed."""
        return max(0.0, self._busy_until - self._node.now)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent busy (may exceed 1 if saturated)."""
        if elapsed <= 0:
            return 0.0
        return self.total_busy / elapsed


class TrustedServer(Node):
    """Base class for master servers and the auditor.

    Subclasses implement the ``deliver_*`` hooks, which the broadcast
    invokes in the same total order on every trusted server.
    """

    def __init__(self, node_id: str, simulator: Simulator, network: Network,
                 config: ProtocolConfig, store: ContentStore,
                 member_ids: list[str], metrics: MetricsRegistry) -> None:
        super().__init__(node_id, simulator, network)
        self.config = config
        self.metrics = metrics
        self.keys = KeyPair(node_id, new_signer(
            config.signer_scheme, rng=simulator.fork_rng(f"keys:{node_id}"),
            rsa_bits=config.rsa_bits), metrics=metrics)
        self.store = store
        self.version = 0
        #: version -> store snapshot, bounded to ``version_history_depth``.
        self.version_history: OrderedDict[int, ContentStore] = OrderedDict()
        self.version_history[0] = store.clone()
        #: version v -> wire op whose commit moved v -> v+1 (for resyncs;
        #: pruned to ``ops_log_depth``).
        self.ops_log: dict[int, Any] = {}
        #: Unpruned op archive, used only by the offline measurement
        #: oracle (never consulted by protocol code).
        self._ops_archive: dict[int, Any] = {}
        self.commit_times: dict[int, float] = {0: 0.0}
        #: The elected auditor set (empty until the election delivers).
        self.auditor_ids: tuple[str, ...] = ()
        #: slave -> owning master, systemwide (from slave-list broadcasts).
        self.master_of: dict[str, str] = {}
        #: master -> its announced slave certificates (point-to-point
        #: dissemination accompanying the slave-list broadcasts).
        self.announced_lists: dict[str, tuple[Certificate, ...]] = {}
        #: Every slave certificate ever seen, kept forever so historical
        #: pledge signatures stay verifiable after exclusions/takeovers.
        self._cert_archive: dict[str, Certificate] = {}
        self.work = WorkQueue(self)
        self.broadcast = TotalOrderBroadcast(
            self,
            members=member_ids,
            on_deliver=self._on_deliver,
            request_timeout=config.broadcast_request_timeout,
            heartbeat_interval=config.broadcast_heartbeat_interval,
            suspect_after=config.broadcast_suspect_after,
            on_member_removed=self.on_trusted_member_crashed,
            on_member_readmitted=self.on_trusted_member_recovered,
        )
        self.rng = simulator.fork_rng(f"server:{node_id}")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self.broadcast.start()

    def on_crash(self) -> None:
        self.broadcast.stop()

    def on_recover(self) -> None:
        self.broadcast.announce_recovery()

    # -- message routing ----------------------------------------------------

    def on_message(self, src_id: str, message: Any) -> None:
        if isinstance(message, BroadcastWrapper):
            self.broadcast.handle_message(src_id, message.envelope)
        elif isinstance(message, CertAnnouncement):
            self.announced_lists[message.master_id] = message.certs
            # Archive permanently: pledges signed by a since-excluded
            # slave must remain verifiable (the pledge is the evidence).
            for cert in message.certs:
                self._cert_archive[cert.subject_id] = cert
        else:
            self.handle_protocol_message(src_id, message)

    def handle_protocol_message(self, src_id: str, message: Any) -> None:
        """Role-specific traffic (clients, slaves).  Subclasses override."""
        raise NotImplementedError

    # Transport shim: the broadcast engine sends raw envelopes; wrap them
    # so on_message can distinguish engine traffic from protocol traffic.
    def send(self, dst_id: str, message: Any, size_bytes: int = 256) -> None:
        if isinstance(message, BroadcastEnvelope):
            message = BroadcastWrapper(envelope=message)
        super().send(dst_id, message, size_bytes)

    # -- broadcast delivery dispatch ---------------------------------------

    def _on_deliver(self, seq: int, origin: str, payload: Any) -> None:
        if isinstance(payload, BcastWrite):
            self.deliver_write(seq, origin, payload)
        elif isinstance(payload, BcastElectAuditor):
            self.deliver_auditor_election(payload)
        elif isinstance(payload, BcastSlaveList):
            self.deliver_slave_list(payload)
        elif isinstance(payload, BcastExcludeSlave):
            self.deliver_exclusion(payload)
        else:
            raise TypeError(
                f"unexpected broadcast payload {type(payload).__name__}"
            )

    def deliver_write(self, seq: int, origin: str, payload: BcastWrite) -> None:
        raise NotImplementedError

    def deliver_auditor_election(self, payload: BcastElectAuditor) -> None:
        """Record the elected auditors; first delivery fixes the set."""
        if not self.auditor_ids:
            self.auditor_ids = tuple(payload.auditor_ids)

    def deliver_slave_list(self, payload: BcastSlaveList) -> None:
        """Track slave ownership systemwide (enables accusation routing
        and crash takeover)."""
        for slave_id in payload.slave_ids:
            self.master_of[slave_id] = payload.master_id

    def find_slave_cert(self, slave_id: str) -> Certificate | None:
        """Locate a slave's certificate (archived forever), or None."""
        cert = self._cert_archive.get(slave_id)
        if cert is not None:
            return cert
        for certs in self.announced_lists.values():
            for candidate in certs:
                if candidate.subject_id == slave_id:
                    return candidate
        return None

    def deliver_exclusion(self, payload: BcastExcludeSlave) -> None:
        """A slave was proven malicious; subclasses react."""

    def on_trusted_member_crashed(self, member_id: str) -> None:
        """Broadcast layer suspects ``member_id`` crashed; subclasses react."""

    def on_trusted_member_recovered(self, member_id: str) -> None:
        """A previously-suspected member rejoined; subclasses react."""

    # -- version state ----------------------------------------------------------

    def current_stamp(self) -> VersionStamp:
        """A freshly signed stamp for the current version."""
        return VersionStamp.make(self.keys, self.version, self.now)

    def commit_op(self, op_wire: Any) -> None:
        """Apply a committed write locally and archive the snapshot."""
        op = operation_from_wire(op_wire)
        self.store.apply_write(op)
        self.ops_log[self.version] = op_wire
        self._ops_archive[self.version] = op_wire
        self.version += 1
        self.commit_times[self.version] = self.now
        self.version_history[self.version] = self.store.clone()
        while len(self.version_history) > self.config.version_history_depth:
            self.version_history.popitem(last=False)
        # Prune the incremental-resync log; slaves further behind than
        # this receive a full snapshot instead (see master._handle_resync).
        floor = self.version - self.config.ops_log_depth
        for old in [v for v in self.ops_log if v < floor]:
            del self.ops_log[old]

    def store_at(self, version: int) -> ContentStore | None:
        """Historical snapshot, or None if outside the retained window."""
        return self.version_history.get(version)

    def execution_time(self, cost_units: float) -> float:
        """Simulated compute time for executing a query of given cost."""
        return cost_units * self.config.service_time_per_unit

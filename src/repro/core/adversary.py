"""Byzantine slave behaviour strategies.

The threat model (Sections 2-3): slaves are "only marginally trusted" and
may return arbitrary wrong answers, but they *cannot forge signatures* of
masters or other slaves, and masters/the auditor are trusted.  Every
strategy here therefore manipulates only what a real malicious slave
controls: the result it computes, the pledge it signs over that result,
and whether it answers at all.

A strategy is attached to a slave at construction; honest slaves use
:class:`Honest`.  Strategies see the query, the correct result and the
slave's current version, and return the (possibly corrupted) result to
serve.  Corruption is deterministic given the strategy's RNG stream, so
runs reproduce.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.content.queries import ReadQuery

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids a runtime cycle
    from repro.content.store import ContentStore


class AdversaryStrategy:
    """Base: honest pass-through.  Subclasses override :meth:`corrupt`."""

    name = "honest"

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random(0)
        self.lies_told = 0

    def corrupt(self, query: ReadQuery, correct_result: Any,
                version: int, client_id: str) -> Any:
        """Return the result the slave will serve (and pledge)."""
        return correct_result

    def should_refuse(self, query: ReadQuery, client_id: str) -> bool:
        """Whether to silently drop the request (denial of service)."""
        return False

    def _wrong_answer(self, query: ReadQuery, correct_result: Any) -> Any:
        """A deterministic wrong-but-plausible answer for this query.

        Derived from the request hash so that *colluding* slaves sharing a
        strategy seed produce the *same* lie -- which is exactly the
        collusion the quorum-read variant (Section 4) must defeat.
        """
        self.lies_told += 1
        tag = query.request_hash()[:8]
        return {"forged": True, "tag": tag}


class Honest(AdversaryStrategy):
    """No misbehaviour."""

    name = "honest"


class AlwaysLie(AdversaryStrategy):
    """Corrupt every single answer.  Caught almost immediately."""

    name = "always-lie"

    def corrupt(self, query: ReadQuery, correct_result: Any,
                version: int, client_id: str) -> Any:
        return self._wrong_answer(query, correct_result)


class ProbabilisticLie(AdversaryStrategy):
    """Corrupt each answer independently with probability ``lie_rate``.

    The stealthy adversary for experiment E1: detection latency scales as
    ``1 / (p * q)`` where ``p`` is the double-check probability and ``q``
    this lie rate.
    """

    name = "probabilistic-lie"

    def __init__(self, lie_rate: float,
                 rng: random.Random | None = None) -> None:
        super().__init__(rng)
        if not 0.0 <= lie_rate <= 1.0:
            raise ValueError(f"lie rate must be in [0, 1], got {lie_rate}")
        self.lie_rate = lie_rate

    def corrupt(self, query: ReadQuery, correct_result: Any,
                version: int, client_id: str) -> Any:
        if self.rng.random() < self.lie_rate:
            return self._wrong_answer(query, correct_result)
        return correct_result


class TargetedLie(AdversaryStrategy):
    """Lie only to specific victim clients; serve everyone else honestly.

    Defeats naive reputation schemes; caught only by the victims'
    double-checks or by the audit (every pledge is audited regardless of
    which client it was served to).
    """

    name = "targeted-lie"

    def __init__(self, victim_client_ids: set[str],
                 lie_rate: float = 1.0,
                 rng: random.Random | None = None) -> None:
        super().__init__(rng)
        self.victims = set(victim_client_ids)
        self.lie_rate = lie_rate

    def corrupt(self, query: ReadQuery, correct_result: Any,
                version: int, client_id: str) -> Any:
        if client_id in self.victims and self.rng.random() < self.lie_rate:
            return self._wrong_answer(query, correct_result)
        return correct_result


class StaleServe(AdversaryStrategy):
    """Serve results computed against an old version of the content.

    Modelled by answering from a frozen snapshot the slave keeps from the
    moment the strategy activates.  Because the pledge must carry a
    *master-signed* stamp, the slave can at worst reuse the newest stamp
    it holds -- so either the stamp is fresh (and the audit of that
    version catches the wrong result) or it is old (and clients reject it
    as stale).  This strategy exists to demonstrate that freshness, not
    honesty, is what the stamp buys.
    """

    name = "stale-serve"

    def __init__(self, rng: random.Random | None = None) -> None:
        super().__init__(rng)
        #: Set by the slave on activation.
        self.frozen_store: "ContentStore | None" = None

    def corrupt(self, query: ReadQuery, correct_result: Any,
                version: int, client_id: str) -> Any:
        if self.frozen_store is None:
            return correct_result
        outcome = self.frozen_store.execute_read(query)
        if outcome.result != correct_result:
            self.lies_told += 1
        return outcome.result


class Unresponsive(AdversaryStrategy):
    """Drop a fraction of requests (benign-looking denial of service).

    Never produces incriminating evidence; clients see timeouts and
    eventually re-setup.  Included to show what the accountability
    mechanism *cannot* punish -- the paper's guarantees are about wrong
    answers, not liveness.
    """

    name = "unresponsive"

    def __init__(self, drop_rate: float = 1.0,
                 rng: random.Random | None = None) -> None:
        super().__init__(rng)
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {drop_rate}")
        self.drop_rate = drop_rate

    def should_refuse(self, query: ReadQuery, client_id: str) -> bool:
        return self.rng.random() < self.drop_rate


class BrokenSignature(AdversaryStrategy):
    """Serve correct results but garbage pledge signatures.

    Clients reject such replies outright (``bad_signature``), so this
    adversary can never place a wrong result -- but it also never
    produces verifiable evidence against itself, making it effectively a
    denial-of-service: clients retry elsewhere and eventually re-setup.
    Included to delimit what the accountability mechanism punishes.
    """

    name = "broken-signature"

    def __init__(self, garble_rate: float = 1.0,
                 rng: random.Random | None = None) -> None:
        super().__init__(rng)
        if not 0.0 <= garble_rate <= 1.0:
            raise ValueError(
                f"garble rate must be in [0, 1], got {garble_rate}")
        self.garble_rate = garble_rate

    def garble_signature(self) -> bool:
        """Whether to replace the next pledge's signature with junk."""
        return self.rng.random() < self.garble_rate


class CorruptState(AdversaryStrategy):
    """Tamper with the local replica when applying state updates.

    Instead of lying at read time, this slave corrupts the *write* as it
    applies it (e.g. flipping values), then serves every read "honestly"
    from the corrupted store.  From the defence's point of view this is
    indistinguishable from lying -- the pledge hashes a result that
    trusted re-execution contradicts -- so the same double-check/audit
    machinery convicts it.  Included to show the accountability argument
    does not depend on *where* in the slave the corruption happens.

    ``mangle`` maps an applied write op to the op actually applied.
    """

    name = "corrupt-state"

    def __init__(self, rng: random.Random | None = None) -> None:
        super().__init__(rng)
        self.writes_corrupted = 0

    def mangle_write(self, op: Any) -> Any:
        """Default mangling: corrupt any value field on the op."""
        value = getattr(op, "value", None)
        if value is None:
            return op
        self.writes_corrupted += 1
        self.lies_told += 1  # every subsequent read of this key is a lie
        import dataclasses

        return dataclasses.replace(op, value={"corrupted": True,
                                              "was": repr(value)})


class AnswerSubstitution(AdversaryStrategy):
    """Answer query A with a *valid* (result, pledge) pair for query B.

    The substituted pledge is honestly computed -- correct result, real
    signature, fresh stamp -- just for the wrong query.  The hash check,
    the signature checks and the freshness check all pass; only the
    client's binding check (pledge.query == the query it actually asked,
    pledge.request_id == its request) stops it.  Were the client to
    accept, the audit would come back *clean*, because the pledge itself
    is truthful -- making this the one adversary the audit cannot catch
    and therefore a mandatory client-side check.

    Implemented via :meth:`substitute_query`: the slave executes and
    pledges a decoy query instead of the requested one.
    """

    name = "answer-substitution"

    def __init__(self, decoy_query: Any = None,
                 rng: random.Random | None = None) -> None:
        super().__init__(rng)
        self.decoy_query = decoy_query

    def substitute_query(self, query: ReadQuery) -> Any:
        """Return the decoy to execute/pledge instead of ``query``."""
        self.lies_told += 1
        return self.decoy_query


class Colluding(AdversaryStrategy):
    """Group members lie identically (same seed -> same wrong answers).

    For the quorum-read variant: if every slave in a client's quorum is in
    the same colluding group, their identical lies pass the cross-check
    and only the master double-check or the audit can catch them.
    """

    name = "colluding"

    def __init__(self, group_seed: int, lie_rate: float = 1.0) -> None:
        # All group members construct identical RNG streams.
        super().__init__(random.Random(group_seed))
        self.lie_rate = lie_rate

    def corrupt(self, query: ReadQuery, correct_result: Any,
                version: int, client_id: str) -> Any:
        # Deterministic in the *query*, not in call order, so colluders
        # that serve different request interleavings still agree.
        decision_rng = random.Random(
            query.request_hash() + "/colluding-decision")
        if decision_rng.random() < self.lie_rate:
            return self._wrong_answer(query, correct_result)
        return correct_result

"""Write-rate and consistency-window bounds from the spacing rule.

Section 3.1: "In order to prevent race conditions, two write operations
cannot be, time-wise, closer than max_latency to each other.  This
obviously limits the number of write operations that can be executed in a
given time, which is why we advocate our architecture only for
applications where there is a high reads to writes ratio."
"""

from __future__ import annotations


def max_write_rate(max_latency: float) -> float:
    """Committed writes per second cannot exceed ``1 / max_latency``."""
    if max_latency <= 0:
        raise ValueError(f"max_latency must be positive, got {max_latency}")
    return 1.0 / max_latency


def inconsistency_window(max_latency: float) -> float:
    """Upper bound on how long a committed write may stay invisible.

    "A client is guaranteed that once max_latency time has elapsed since
    committing a write, no other client will accept a read that is not
    dependent on that write."
    """
    if max_latency <= 0:
        raise ValueError(f"max_latency must be positive, got {max_latency}")
    return max_latency


def min_read_write_ratio_for_load(read_rate: float,
                                  max_latency: float) -> float:
    """Reads per write when writes run at their ceiling.

    A helper for sizing: with reads at ``read_rate`` and writes saturated
    at ``1/max_latency``, the ratio the deployment actually experiences.
    """
    if read_rate <= 0:
        raise ValueError(f"read_rate must be positive, got {read_rate}")
    return read_rate * max_latency

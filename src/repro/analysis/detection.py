"""Detection models for probabilistic checking and auditing.

Section 3.3 requires the double-check probability to be "small enough so
it does not excessively increase the workload on the masters, but large
enough so it guarantees that a malicious slave is caught red-handed
quickly".  The underlying process is Bernoulli: a slave lying on each
read with probability ``q``, each read independently double-checked with
probability ``p``, is caught on a given read with probability ``p * q``
-- so reads-until-detection is geometric.
"""

from __future__ import annotations


def expected_reads_until_detection(double_check_probability: float,
                                   lie_rate: float) -> float:
    """Mean number of reads a lying slave serves before immediate discovery.

    Geometric with success probability ``p * q``; infinite when either
    dial is zero (then only the audit can catch the slave).
    """
    _check_probability("double_check_probability", double_check_probability)
    _check_probability("lie_rate", lie_rate)
    caught_per_read = double_check_probability * lie_rate
    if caught_per_read == 0:
        return float("inf")
    return 1.0 / caught_per_read


def detection_cdf(reads: int, double_check_probability: float,
                  lie_rate: float) -> float:
    """P(slave caught red-handed within ``reads`` reads)."""
    if reads < 0:
        raise ValueError(f"reads must be non-negative, got {reads}")
    _check_probability("double_check_probability", double_check_probability)
    _check_probability("lie_rate", lie_rate)
    return 1.0 - (1.0 - double_check_probability * lie_rate) ** reads


def expected_audit_detection_delay(lie_rate: float,
                                   read_rate: float,
                                   audit_fraction: float,
                                   audit_lag: float) -> float:
    """Mean time until the audit catches a slave lying at rate ``q``.

    The slave serves lies at rate ``read_rate * q``; each lie's pledge is
    audited with probability ``audit_fraction``, after roughly
    ``audit_lag`` seconds of queueing/settling.  Expected delay is the
    wait for the first audited lie plus the lag.
    """
    _check_probability("lie_rate", lie_rate)
    _check_probability("audit_fraction", audit_fraction)
    if read_rate <= 0:
        raise ValueError(f"read_rate must be positive, got {read_rate}")
    lie_audit_rate = read_rate * lie_rate * audit_fraction
    if lie_audit_rate == 0:
        return float("inf")
    return 1.0 / lie_audit_rate + audit_lag


def detection_quantile(quantile: float, double_check_probability: float,
                       lie_rate: float) -> float:
    """Reads by which a lying slave is caught with probability ``quantile``.

    Inverse of :func:`detection_cdf`:
    ``n = ln(1 - quantile) / ln(1 - p*q)``.  E.g. the 95th percentile of
    detection cost is about ``3 / (p*q)`` reads.
    """
    if not 0.0 <= quantile < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {quantile}")
    _check_probability("double_check_probability", double_check_probability)
    _check_probability("lie_rate", lie_rate)
    caught_per_read = double_check_probability * lie_rate
    if caught_per_read == 0:
        return float("inf")
    if caught_per_read == 1:
        return 1.0
    import math

    return math.log(1.0 - quantile) / math.log(1.0 - caught_per_read)


def master_load_fraction(double_check_probability: float,
                         sensitive_fraction: float = 0.0) -> float:
    """Fraction of all reads that also execute on a master.

    Base protocol: ``p`` of reads double-check.  With the Section 4
    security-level variant, ``sensitive_fraction`` of reads run *only* on
    the master (probability 1), the rest double-check at ``p``.
    """
    _check_probability("double_check_probability", double_check_probability)
    _check_probability("sensitive_fraction", sensitive_fraction)
    return (sensitive_fraction
            + (1.0 - sensitive_fraction) * double_check_probability)


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")

"""Per-read resource formulas for the three designs (experiment E8).

These are the steady-state read-path costs; writes are excluded because
all three systems take the read-dominated workloads of Section 2.  Units
match :class:`repro.baselines.costs.CostLedger`.

Ours (Sections 3.2-3.4), per read with double-check probability ``p`` and
audit fraction ``a``:

* untrusted compute: 1 execution (the slave) + 1 signature;
* trusted compute: ``p`` executions (double-checks) + ``a`` executions
  at the auditor, *discounted by its cache hit rate* ``h``;
* client: 1 hash + 2 signature verifications (pledge + stamp).

State signing, per point read: proof generation/verification only -- but
dynamic queries cost a trusted fetch-verify-execute pass over the whole
relevant subset (modelled as ``n_items`` fetches).

Quorum SMR with resilience ``f``: ``2f + 1`` executions and signatures
per read, client verifies all replies.
"""

from __future__ import annotations

import math


def our_per_read_costs(double_check_probability: float,
                       audit_fraction: float = 1.0,
                       audit_cache_hit_rate: float = 0.0,
                       exec_units: float = 1.0) -> dict[str, float]:
    """Expected per-read costs for the paper's design."""
    _check("double_check_probability", double_check_probability)
    _check("audit_fraction", audit_fraction)
    _check("audit_cache_hit_rate", audit_cache_hit_rate)
    p = double_check_probability
    audit_exec = (audit_fraction * (1.0 - p)  # double-checked reads skip audit
                  * (1.0 - audit_cache_hit_rate) * exec_units)
    return {
        "untrusted_units": exec_units,
        "trusted_units": p * exec_units + audit_exec,
        "signatures": 1.0,  # the slave's pledge; the auditor signs nothing
        "verifications": 2.0 + audit_fraction * (1.0 - p) * 2.0,
        "messages": 2.0 + 2.0 * p + (1.0 - p),  # read/reply, dc, forward
    }


def smr_per_read_costs(f: int, exec_units: float = 1.0) -> dict[str, float]:
    """Expected per-read costs for quorum state-machine replication."""
    if f < 0:
        raise ValueError(f"f must be non-negative, got {f}")
    quorum = 2 * f + 1
    return {
        "untrusted_units": quorum * exec_units,
        "trusted_units": 0.0,
        "signatures": float(quorum),
        "verifications": float(quorum),
        "messages": 2.0 * quorum,
    }


def state_signing_per_read_costs(n_items: int,
                                 dynamic_fraction: float,
                                 exec_units: float = 1.0) -> dict[str, float]:
    """Expected per-read costs for Merkle state signing.

    ``dynamic_fraction`` of reads are non-point queries that must run on
    a trusted host after fetching and verifying all ``n_items`` relevant
    items (Section 5's limitation).
    """
    _check("dynamic_fraction", dynamic_fraction)
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    proof_len = max(1.0, math.log2(n_items))
    point = 1.0 - dynamic_fraction
    return {
        "untrusted_units": point * 1.0 + dynamic_fraction * n_items,
        "trusted_units": dynamic_fraction * n_items * exec_units,
        "signatures": 0.0,  # the root is signed per write, not per read
        "verifications": point * 1.0 + dynamic_fraction * n_items,
        "hashes": point * proof_len + dynamic_fraction * n_items * proof_len,
        "messages": point * 2.0 + dynamic_fraction * 2.0 * n_items,
    }


def _check(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")

"""Closed-form analytic models for the paper's quantitative claims.

Every experiment pairs its simulation with the matching analytic
prediction from this package, so EXPERIMENTS.md can report
theory-vs-measured for each claim:

* :mod:`repro.analysis.detection` -- geometric detection model for
  probabilistic checking (E1), master load overhead (E2), audit detection
  (E3);
* :mod:`repro.analysis.staleness` -- freshness-rejection probability as a
  function of keep-alive interval, ``max_latency`` and network delay
  (E6);
* :mod:`repro.analysis.writes` -- write-throughput ceiling and
  inconsistency-window bounds from the ``max_latency`` spacing rule (E7);
* :mod:`repro.analysis.costmodel` -- per-read resource formulas for ours
  vs. state signing vs. quorum SMR (E8);
* :mod:`repro.analysis.quorum` -- collusion probabilities for the
  quorum-read variant (E9).
"""

from repro.analysis.detection import (
    detection_cdf,
    detection_quantile,
    expected_audit_detection_delay,
    expected_reads_until_detection,
    master_load_fraction,
)
from repro.analysis.staleness import (
    staleness_rejection_probability,
    expected_stamp_age,
)
from repro.analysis.writes import (
    inconsistency_window,
    max_write_rate,
)
from repro.analysis.costmodel import (
    our_per_read_costs,
    smr_per_read_costs,
    state_signing_per_read_costs,
)
from repro.analysis.quorum import (
    collusion_pass_probability,
    undetected_lie_probability,
)

__all__ = [
    "expected_reads_until_detection",
    "detection_cdf",
    "detection_quantile",
    "expected_audit_detection_delay",
    "master_load_fraction",
    "staleness_rejection_probability",
    "expected_stamp_age",
    "max_write_rate",
    "inconsistency_window",
    "our_per_read_costs",
    "smr_per_read_costs",
    "state_signing_per_read_costs",
    "collusion_pass_probability",
    "undetected_lie_probability",
]

"""Collusion models for the quorum-read variant (Section 4, experiment E9).

"This approach ... has the advantage that a number of malicious slaves
would have to collude in order to pass an incorrect answer."

A wrong answer passes the client's cross-check only when *every* slave in
the read quorum is in the same colluding group (identical lies).  Even
then, the lie is caught by the client's probabilistic double-check or by
the audit.
"""

from __future__ import annotations

import math


def collusion_pass_probability(num_slaves: int, num_colluding: int,
                               quorum: int) -> float:
    """P(every quorum member colludes) under uniform random assignment.

    Hypergeometric: choosing ``quorum`` distinct slaves out of
    ``num_slaves`` of which ``num_colluding`` collude.
    """
    if quorum < 1:
        raise ValueError(f"quorum must be >= 1, got {quorum}")
    if not 0 <= num_colluding <= num_slaves:
        raise ValueError(
            f"num_colluding must be in [0, {num_slaves}], "
            f"got {num_colluding}")
    if quorum > num_slaves:
        raise ValueError(
            f"quorum {quorum} exceeds population {num_slaves}")
    if num_colluding < quorum:
        return 0.0
    return (math.comb(num_colluding, quorum)
            / math.comb(num_slaves, quorum))


def undetected_lie_probability(num_slaves: int, num_colluding: int,
                               quorum: int,
                               double_check_probability: float,
                               audit_fraction: float = 1.0) -> float:
    """P(a given lie is served, passes the quorum, and is never audited).

    The quorum must be all-colluding, the client must skip the
    double-check, and the auditor must skip that pledge.  With the
    paper's default ``audit_fraction = 1`` this is zero: everything is
    eventually caught, which is the whole point of Section 3.4.
    """
    if not 0.0 <= double_check_probability <= 1.0:
        raise ValueError("double_check_probability must be in [0, 1]")
    if not 0.0 <= audit_fraction <= 1.0:
        raise ValueError("audit_fraction must be in [0, 1]")
    pass_quorum = collusion_pass_probability(num_slaves, num_colluding,
                                             quorum)
    return (pass_quorum * (1.0 - double_check_probability)
            * (1.0 - audit_fraction))

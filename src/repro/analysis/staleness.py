"""Freshness model: when do clients reject answers as stale?

Section 3.2: "it is possible that a result that was fresh when sent by
the slave becomes stale by the time it reaches the client ... By
carefully selecting the value for max_latency, and the frequency masters
send keep-alive packets, the probability of such events occurring can be
reduced."

The stamp a client sees has age::

    age = A + S + D

where ``A ~ U[0, keepalive_interval]`` is the stamp's age when the read
arrives at the slave (stamps are refreshed every interval, plus the
master->slave delivery delay folded into the same uniform to first
order), ``S`` is the slave's service time and ``D`` the slave->client
delay.  The client rejects when ``age >= max_latency``.  The model
evaluates ``P(reject)`` by deterministic quasi-Monte-Carlo over the
supplied delay model -- exact enough to overlay on the E6 sweep.
"""

from __future__ import annotations

import random

from repro.sim.latency import LatencyModel


def expected_stamp_age(keepalive_interval: float,
                       mean_network_delay: float,
                       mean_service_time: float = 0.0) -> float:
    """First-order mean stamp age at the client."""
    if keepalive_interval <= 0:
        raise ValueError("keepalive_interval must be positive")
    return keepalive_interval / 2.0 + mean_network_delay + mean_service_time


def staleness_rejection_probability(
    keepalive_interval: float,
    max_latency: float,
    delay_model: LatencyModel,
    master_to_slave_delay: float = 0.0,
    service_time: float = 0.0,
    samples: int = 20_000,
    seed: int = 20_030_601,
) -> float:
    """P(stamp age at client >= max_latency), by seeded Monte Carlo.

    ``master_to_slave_delay`` and ``service_time`` are added
    deterministically (use means); the slave->client delay is drawn from
    ``delay_model``.
    """
    if keepalive_interval <= 0 or max_latency <= 0:
        raise ValueError("intervals must be positive")
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = random.Random(seed)
    rejected = 0
    for _ in range(samples):
        stamp_age_at_slave = rng.uniform(0.0, keepalive_interval)
        delay = delay_model.sample("slave", "client", rng)
        age = (stamp_age_at_slave + master_to_slave_delay + service_time
               + delay)
        if age >= max_latency:
            rejected += 1
    return rejected / samples
